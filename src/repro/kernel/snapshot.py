"""Compact array-backed graph snapshots (the ``CSR`` kernel representation).

A :class:`CSRSnapshot` freezes the *topology* of a graph-like object into
flat arrays while keeping the *weights* cheaply refreshable:

* ``ids`` — sorted vertex-id interning table (index → original id).  Sorting
  makes the id → index mapping order-isomorphic, so heap tie-breaking inside
  the kernel primitives matches the dict-based reference algorithms exactly
  and both produce bit-identical results.
* ``indptr`` / ``indices`` / ``weights`` — standard CSR adjacency: the
  neighbours of interned vertex ``i`` are
  ``indices[indptr[i]:indptr[i+1]]`` with parallel arc weights.  Row order
  preserves the source object's ``neighbors`` iteration order, which keeps
  relaxation order (and therefore predecessor choice on ties) identical to
  the reference implementation.
* an arc-position map for O(1) directed ``(u, v) →`` weight lookup, used by
  Yen's root pricing and by edge-ban translation.

Snapshots model the paper's dynamics: topology is fixed, weights change.
:meth:`CSRSnapshot.refresh` pulls in weight changes incrementally, keyed off
the per-edge version counters of :class:`~repro.graph.graph.DynamicGraph`
(``edges_changed_since``), so a long-lived consumer (DTLP, the distributed
bolts, the serving loop) refreshes in O(changed edges) instead of rebuilding
in O(V + E).  Sources without version counters (the skeleton graph) fall
back to a full weight re-read, which is still cheap because no structure is
rebuilt.  See ``ARCHITECTURE.md`` for where snapshots sit in the layer
stack and when to prefer them over the dict-based reference path.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from ..graph.errors import EdgeNotFoundError, VertexNotFoundError
from ..graph.graph import DynamicGraph
from ..graph.subgraph import Subgraph

__all__ = ["CSRSnapshot"]


def _neighbor_pairs(source, vertex: int) -> Iterator[Tuple[int, float]]:
    """Neighbour pairs of ``vertex`` in the source's own iteration order."""
    result = source.neighbors(vertex)
    if isinstance(result, Mapping):
        return iter(result.items())
    return iter(result)


def _vertex_iterable(source) -> Iterator[int]:
    """Vertices of any graph-like (``vertices`` may be a method or property)."""
    vertices = source.vertices
    return iter(vertices() if callable(vertices) else vertices)


class CSRSnapshot:
    """A flat-array view of a graph-like object for the kernel primitives.

    Parameters
    ----------
    source:
        Any object exposing ``vertices`` (method or iterable property) and
        ``neighbors(vertex)`` (mapping or iterable of pairs):
        :class:`~repro.graph.graph.DynamicGraph`,
        :class:`~repro.graph.subgraph.Subgraph`,
        :class:`~repro.core.skeleton.SkeletonGraph`, …

    Notes
    -----
    The snapshot exposes the same ``neighbors`` protocol as the graph
    classes, so generic (non-kernel) code also runs on it unchanged; the
    point of the class, however, is that :func:`repro.algorithms.dijkstra.dijkstra`
    and Yen's algorithm recognise it and dispatch to the array kernel.
    """

    __slots__ = (
        "ids",
        "index_of",
        "indptr",
        "indices",
        "weights",
        "rows",
        "directed",
        "_source",
        "_version_source",
        "_built_version",
        "_arc_pos",
        "_weights_epoch",
        "_array_cache",
    )

    def __init__(self, source) -> None:
        self._source = source
        self.directed: bool = bool(getattr(source, "directed", False))
        ids: List[int] = sorted(_vertex_iterable(source))
        self.ids = ids
        index_of: Dict[int, int] = {vid: i for i, vid in enumerate(ids)}
        self.index_of = index_of
        indptr: List[int] = [0]
        indices: List[int] = []
        weights: List[float] = []
        arc_pos: Dict[Tuple[int, int], int] = {}
        for i, vid in enumerate(ids):
            for neighbor, weight in _neighbor_pairs(source, vid):
                j = index_of[neighbor]
                arc_pos[(i, j)] = len(indices)
                indices.append(j)
                weights.append(float(weight))
            indptr.append(len(indices))
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self._arc_pos = arc_pos
        # Derived per-vertex row view consumed by the kernel's inner loop:
        # rows[i] is a tuple of (neighbour_index, weight) pairs in CSR row
        # order.  Rebuilt per-vertex on refresh (tuples are immutable).
        self.rows: List[Tuple[Tuple[int, float], ...]] = [
            tuple(zip(indices[indptr[i]:indptr[i + 1]], weights[indptr[i]:indptr[i + 1]]))
            for i in range(len(ids))
        ]
        # Weight-refresh bookkeeping: incremental when the source carries
        # version counters (DynamicGraph directly, Subgraph via its parent),
        # full re-read otherwise (SkeletonGraph).
        if isinstance(source, Subgraph):
            self._version_source: Optional[DynamicGraph] = source.parent
        elif isinstance(source, DynamicGraph):
            self._version_source = source
        else:
            self._version_source = None
        self._built_version: int = (
            self._version_source.version if self._version_source is not None else 0
        )
        self._weights_epoch: int = 0
        # Lazily-built numpy views of the CSR arrays, keyed by the weights
        # epoch they were materialised at (see :meth:`array_view`).
        self._array_cache: Optional[Tuple[int, tuple]] = None

    # ------------------------------------------------------------------
    # structure accessors
    # ------------------------------------------------------------------
    @property
    def source(self):
        """The graph-like object this snapshot was built from."""
        return self._source

    @property
    def version(self) -> int:
        """Source-graph version the current weights correspond to."""
        return self._built_version

    @property
    def weights_epoch(self) -> int:
        """Counter advanced every time :meth:`refresh` rewrote any weight.

        Unlike :attr:`version` (which tracks the *source graph's* version
        and advances even when none of the changed edges belong to this
        snapshot), the epoch moves only when this snapshot's weights
        actually changed — the invalidation key used by derived caches
        (heuristic lower-bound tables, partial-KSP memos).
        """
        return self._weights_epoch

    @property
    def num_vertices(self) -> int:
        """Number of vertices in the snapshot."""
        return len(self.ids)

    @property
    def num_edges(self) -> int:
        """Number of edges (arcs for directed snapshots)."""
        return len(self.indices) if self.directed else len(self.indices) // 2

    def vertices(self) -> Iterator[int]:
        """Iterate over the original vertex ids."""
        return iter(self.ids)

    def has_vertex(self, vertex: int) -> bool:
        """Return ``True`` when ``vertex`` is in the snapshot."""
        return vertex in self.index_of

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` when the arc ``(u, v)`` is in the snapshot."""
        return self.arc_position(u, v) is not None

    def arc_position(self, u: int, v: int) -> Optional[int]:
        """Flat-array position of the directed arc ``(u, v)``, or ``None``."""
        index_of = self.index_of
        ui = index_of.get(u)
        vi = index_of.get(v)
        if ui is None or vi is None:
            return None
        return self._arc_pos.get((ui, vi))

    def neighbors(self, vertex: int) -> Iterator[Tuple[int, float]]:
        """Yield ``(neighbour_id, weight)`` pairs (graph-like protocol)."""
        try:
            i = self.index_of[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None
        ids = self.ids
        indices = self.indices
        weights = self.weights
        for e in range(self.indptr[i], self.indptr[i + 1]):
            yield ids[indices[e]], weights[e]

    def array_view(self):
        """Numpy views of the CSR arrays: ``(indptr, indices, weights)``.

        Materialised lazily (the snapshot itself stays pure-Python lists,
        which the heap kernel indexes faster) and cached until the next
        weight refresh — the wavefront kernel
        (:mod:`repro.kernel.wavefront`) calls this once per search and the
        conversion cost amortises across every search until the weights
        change.  Requires numpy; callers gate on
        :func:`repro.kernel.wavefront.numpy_available`.

        The returned arrays are shared and must not be mutated.
        """
        import numpy as np

        epoch = self._weights_epoch
        cached = self._array_cache
        if cached is not None and cached[0] == epoch:
            return cached[1]
        view = (
            np.asarray(self.indptr, dtype=np.int64),
            np.asarray(self.indices, dtype=np.int64),
            np.asarray(self.weights, dtype=np.float64),
        )
        self._array_cache = (epoch, view)
        return view

    def arc_index_positions(self, pairs) -> List[int]:
        """Flat CSR positions of index-space arc pairs (absent pairs skipped).

        ``pairs`` iterates over ``(u_index, v_index)`` tuples; used to turn
        edge-ban sets into positional masks for the wavefront kernel.
        """
        arc_pos = self._arc_pos
        positions: List[int] = []
        for pair in pairs:
            pos = arc_pos.get(pair)
            if pos is not None:
                positions.append(pos)
        return positions

    def degree(self, vertex: int) -> int:
        """Number of outgoing arcs of ``vertex``."""
        try:
            i = self.index_of[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None
        return self.indptr[i + 1] - self.indptr[i]

    # ------------------------------------------------------------------
    # weights
    # ------------------------------------------------------------------
    def weight(self, u: int, v: int) -> float:
        """Current snapshot weight of arc ``(u, v)`` — O(1)."""
        pos = self.arc_position(u, v)
        if pos is None:
            raise EdgeNotFoundError(u, v)
        return self.weights[pos]

    def path_distance(self, vertices) -> float:
        """Distance of a path under the snapshot's current weights."""
        total = 0.0
        for index in range(len(vertices) - 1):
            total += self.weight(vertices[index], vertices[index + 1])
        return total

    # ------------------------------------------------------------------
    # refresh
    # ------------------------------------------------------------------
    def is_current(self) -> bool:
        """Whether the snapshot weights match the source's current version.

        Always ``False`` for unversioned sources (skeleton graphs), whose
        staleness cannot be detected cheaply.
        """
        if self._version_source is None:
            return False
        return self._version_source.version == self._built_version

    def refresh(self) -> int:
        """Pull weight changes from the source; returns arcs rewritten.

        Incremental for versioned sources — only edges whose per-edge
        version advanced past the snapshot's version are touched; a no-op
        when the source did not change.  Unversioned sources re-read every
        arc weight.  Topology changes (edge insertions) are *not* picked
        up; build a fresh snapshot for those.
        """
        weights = self.weights
        arc_pos = self._arc_pos
        index_of = self.index_of
        rewritten = 0
        versioned = self._version_source
        if versioned is None:
            source = self._source
            ids = self.ids
            changed_rows = set()
            for (ui, vi), pos in arc_pos.items():
                value = source.weight(ids[ui], ids[vi])
                if value != weights[pos]:
                    weights[pos] = value
                    changed_rows.add(ui)
                    rewritten += 1
            self._rebuild_rows(changed_rows)
            if rewritten:
                self._weights_epoch += 1
            return rewritten
        current = versioned.version
        if current == self._built_version:
            return 0
        subgraph = self._source if isinstance(self._source, Subgraph) else None
        stale_rows = set()
        for u, v, weight in versioned.edges_changed_since(self._built_version):
            if subgraph is not None and not subgraph.has_edge(u, v):
                continue
            ui = index_of.get(u)
            vi = index_of.get(v)
            if ui is None or vi is None:
                continue
            pos = arc_pos.get((ui, vi))
            if pos is not None:
                weights[pos] = weight
                stale_rows.add(ui)
                rewritten += 1
            if not self.directed:
                pos = arc_pos.get((vi, ui))
                if pos is not None:
                    weights[pos] = weight
                    stale_rows.add(vi)
                    rewritten += 1
        self._rebuild_rows(stale_rows)
        self._built_version = current
        if rewritten:
            self._weights_epoch += 1
        return rewritten

    def _rebuild_rows(self, row_indices) -> None:
        """Re-derive the row view of the given vertex indices from the CSR arrays."""
        indptr = self.indptr
        indices = self.indices
        weights = self.weights
        rows = self.rows
        for i in row_indices:
            rows[i] = tuple(
                zip(indices[indptr[i]:indptr[i + 1]], weights[indptr[i]:indptr[i + 1]])
            )

    # ------------------------------------------------------------------
    # directed support
    # ------------------------------------------------------------------
    def reverse(self) -> "CSRSnapshot":
        """Snapshot with every arc reversed (used by FindKSP's SPT build).

        For undirected snapshots the adjacency is symmetric, so ``self`` is
        returned unchanged.
        """
        if not self.directed:
            return self
        return CSRSnapshot(_ReversedView(self))

    def __contains__(self, vertex: object) -> bool:
        return vertex in self.index_of

    def __len__(self) -> int:
        return len(self.ids)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "directed" if self.directed else "undirected"
        return (
            f"<CSRSnapshot {kind} |V|={self.num_vertices} "
            f"|E|={self.num_edges} v{self._built_version}>"
        )


class _ReversedView:
    """Minimal graph-like adapter presenting a directed snapshot reversed."""

    def __init__(self, snapshot: CSRSnapshot) -> None:
        self._snapshot = snapshot
        self.directed = True
        reversed_adjacency: Dict[int, List[Tuple[int, float]]] = {
            vid: [] for vid in snapshot.ids
        }
        ids = snapshot.ids
        indptr = snapshot.indptr
        indices = snapshot.indices
        weights = snapshot.weights
        for i, vid in enumerate(ids):
            for e in range(indptr[i], indptr[i + 1]):
                reversed_adjacency[ids[indices[e]]].append((vid, weights[e]))
        self._adjacency = reversed_adjacency

    @property
    def vertices(self):
        return list(self._adjacency)

    def neighbors(self, vertex: int):
        return iter(self._adjacency[vertex])

"""Array-native shortest-path primitives operating in snapshot index space.

These functions are the hot inner loops of the repository.  They work on
the per-vertex row view of a :class:`~repro.kernel.snapshot.CSRSnapshot`
(``rows[i]`` is a tuple of ``(neighbour_index, weight)`` pairs derived from
the flat CSR arrays) — no neighbour-adapter dispatch, no per-edge dictionary
probing — and every identifier they touch is a dense ``0..n-1`` index, so
tentative distances and predecessors are plain lists.

Settled-vertex bookkeeping uses the classic stale-entry test (``d >
dist[u]``) instead of a visited set: with non-negative weights a vertex's
distance is final when it first pops fresh, and any later heap entry for it
carries a strictly larger key, so no separate flag array is needed.

Determinism contract: given rows in the same order as the reference graph's
``neighbors`` iteration and an order-isomorphic id → index mapping (both
guaranteed by :class:`CSRSnapshot`), the relaxation sequence — and therefore
distances *and* predecessor choices on ties — is identical to the
dict-based reference in :mod:`repro.algorithms.dijkstra`.  The property
suite (``tests/test_kernel_properties.py``) pins this down.

See ``ARCHITECTURE.md`` for how the layers fit together.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import List, Optional, Sequence, Set, Tuple

__all__ = ["dijkstra_arrays", "reconstruct_indices"]

_INF = float("inf")


def dijkstra_arrays(
    rows: Sequence[Sequence[Tuple[int, float]]],
    num_vertices: int,
    source: int,
    target: int = -1,
    allowed: Optional[Set[int]] = None,
    banned_vertices: Optional[Set[int]] = None,
    banned_pairs: Optional[Set[Tuple[int, int]]] = None,
    track_touched: bool = True,
) -> Tuple[List[float], List[int], Optional[List[int]]]:
    """Dijkstra over snapshot rows; everything is in index space.

    Parameters
    ----------
    rows:
        Per-vertex adjacency rows of ``(neighbour_index, weight)`` pairs
        (:attr:`CSRSnapshot.rows`).
    num_vertices:
        Number of vertices (``len(rows)``).
    source:
        Source vertex index.
    target:
        Optional target index; ``-1`` disables early exit.
    allowed:
        When given, the search never expands outside this index set.
    banned_vertices:
        Vertex indices that may not be visited (Yen spur searches).
    banned_pairs:
        Directed index pairs ``(u, v)`` that may not be traversed.
    track_touched:
        When ``True`` the third return value lists exactly the labelled
        indices (source first), letting callers build id-space dictionaries
        in O(labelled); pass ``False`` when only ``dist[target]`` and the
        predecessor walk are needed (the ``shortest_path`` / Yen fast
        paths) to keep the inner loop minimal.

    Returns
    -------
    (dist, pred, touched)
        ``dist``/``pred`` are dense lists over all vertex indices
        (``inf`` / ``-1`` when unlabelled); ``touched`` is ``None`` when
        ``track_touched`` is ``False``.
    """
    dist: List[float] = [_INF] * num_vertices
    pred: List[int] = [-1] * num_vertices
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]

    if allowed is None and banned_vertices is None and banned_pairs is None:
        if not track_touched:
            # Leanest loop: full-path queries need only the target label
            # and the predecessor chain.
            while heap:
                d, u = heappop(heap)
                if d > dist[u]:
                    continue
                if u == target:
                    break
                for v, w in rows[u]:
                    nd = d + w
                    if nd < dist[v]:
                        dist[v] = nd
                        pred[v] = u
                        heappush(heap, (nd, v))
            return dist, pred, None
        touched: List[int] = [source]
        while heap:
            d, u = heappop(heap)
            if d > dist[u]:
                continue
            if u == target:
                break
            for v, w in rows[u]:
                nd = d + w
                if nd < dist[v]:
                    if dist[v] == _INF:
                        touched.append(v)
                    dist[v] = nd
                    pred[v] = u
                    heappush(heap, (nd, v))
        return dist, pred, touched

    # Constrained variant (spur searches): ban tests mirror the reference
    # implementation's order so the relaxation sequence stays identical.
    banned_v = banned_vertices if banned_vertices is not None else ()
    banned_p = banned_pairs if banned_pairs is not None else ()
    touched = [source]
    while heap:
        d, u = heappop(heap)
        if d > dist[u]:
            continue
        if u == target:
            break
        for v, w in rows[u]:
            if v in banned_v:
                continue
            if allowed is not None and v not in allowed:
                continue
            if banned_p and (u, v) in banned_p:
                continue
            nd = d + w
            if nd < dist[v]:
                if dist[v] == _INF:
                    touched.append(v)
                dist[v] = nd
                pred[v] = u
                heappush(heap, (nd, v))
    return dist, pred, touched


def reconstruct_indices(pred: Sequence[int], source: int, target: int) -> List[int]:
    """Rebuild the index-space vertex sequence from ``source`` to ``target``."""
    sequence = [target]
    while sequence[-1] != source:
        sequence.append(pred[sequence[-1]])
    sequence.reverse()
    return sequence

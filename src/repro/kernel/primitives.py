"""Array-native shortest-path primitives operating in snapshot index space.

These functions are the hot inner loops of the repository.  They work on
the per-vertex row view of a :class:`~repro.kernel.snapshot.CSRSnapshot`
(``rows[i]`` is a tuple of ``(neighbour_index, weight)`` pairs derived from
the flat CSR arrays) — no neighbour-adapter dispatch, no per-edge dictionary
probing — and every identifier they touch is a dense ``0..n-1`` index, so
tentative distances and predecessors are plain lists.

Settled-vertex bookkeeping uses the classic stale-entry test (``d >
dist[u]``) instead of a visited set: with non-negative weights a vertex's
distance is final when it first pops fresh, and any later heap entry for it
carries a strictly larger key, so no separate flag array is needed.

Determinism contract: given rows in the same order as the reference graph's
``neighbors`` iteration and an order-isomorphic id → index mapping (both
guaranteed by :class:`CSRSnapshot`), the relaxation sequence — and therefore
distances *and* predecessor choices on ties — is identical to the
dict-based reference in :mod:`repro.algorithms.dijkstra`.  The property
suite (``tests/test_kernel_properties.py``) pins this down.

See ``ARCHITECTURE.md`` for how the layers fit together.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..obs.profile import kernel_counters

__all__ = [
    "dijkstra_arrays",
    "dijkstra_arrays_multi",
    "bounded_dijkstra_arrays",
    "astar_arrays",
    "reconstruct_indices",
]

_INF = float("inf")

# Profiling contract: each primitive pays exactly one thread-local lookup
# (kernel_counters()) per call.  When a collector is active the call is
# forwarded to an instrumented twin (_*_profiled below) that replays the
# identical relaxation sequence while counting; when not, the original
# loops run with zero added per-relaxation work.  The twins accumulate
# into locals and fold once at the end, so even the enabled path adds no
# attribute access inside the inner loop.


def dijkstra_arrays(
    rows: Sequence[Sequence[Tuple[int, float]]],
    num_vertices: int,
    source: int,
    target: int = -1,
    allowed: Optional[Set[int]] = None,
    banned_vertices: Optional[Set[int]] = None,
    banned_pairs: Optional[Set[Tuple[int, int]]] = None,
    track_touched: bool = True,
) -> Tuple[List[float], List[int], Optional[List[int]]]:
    """Dijkstra over snapshot rows; everything is in index space.

    Parameters
    ----------
    rows:
        Per-vertex adjacency rows of ``(neighbour_index, weight)`` pairs
        (:attr:`CSRSnapshot.rows`).
    num_vertices:
        Number of vertices (``len(rows)``).
    source:
        Source vertex index.
    target:
        Optional target index; ``-1`` disables early exit.
    allowed:
        When given, the search never expands outside this index set.
    banned_vertices:
        Vertex indices that may not be visited (Yen spur searches).
    banned_pairs:
        Directed index pairs ``(u, v)`` that may not be traversed.
    track_touched:
        When ``True`` the third return value lists exactly the labelled
        indices (source first), letting callers build id-space dictionaries
        in O(labelled); pass ``False`` when only ``dist[target]`` and the
        predecessor walk are needed (the ``shortest_path`` / Yen fast
        paths) to keep the inner loop minimal.

    Returns
    -------
    (dist, pred, touched)
        ``dist``/``pred`` are dense lists over all vertex indices
        (``inf`` / ``-1`` when unlabelled); ``touched`` is ``None`` when
        ``track_touched`` is ``False``.
    """
    prof = kernel_counters()
    if prof is not None:
        return _dijkstra_arrays_profiled(
            prof, rows, num_vertices, source, target,
            allowed, banned_vertices, banned_pairs, track_touched,
        )
    dist: List[float] = [_INF] * num_vertices
    pred: List[int] = [-1] * num_vertices
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]

    if allowed is None and banned_vertices is None and banned_pairs is None:
        if not track_touched:
            # Leanest loop: full-path queries need only the target label
            # and the predecessor chain.
            while heap:
                d, u = heappop(heap)
                if d > dist[u]:
                    continue
                if u == target:
                    break
                for v, w in rows[u]:
                    nd = d + w
                    if nd < dist[v]:
                        dist[v] = nd
                        pred[v] = u
                        heappush(heap, (nd, v))
            return dist, pred, None
        touched: List[int] = [source]
        while heap:
            d, u = heappop(heap)
            if d > dist[u]:
                continue
            if u == target:
                break
            for v, w in rows[u]:
                nd = d + w
                if nd < dist[v]:
                    if dist[v] == _INF:
                        touched.append(v)
                    dist[v] = nd
                    pred[v] = u
                    heappush(heap, (nd, v))
        return dist, pred, touched

    # Constrained variant (spur searches): ban tests mirror the reference
    # implementation's order so the relaxation sequence stays identical.
    # Early exit at target settlement applies here exactly as in the
    # unconstrained loops — spur searches supply both a target and ban
    # sets, and must never pay for settling the rest of the graph.
    banned_v = banned_vertices if banned_vertices is not None else ()
    banned_p = banned_pairs if banned_pairs is not None else ()
    touched = [source] if track_touched else None
    while heap:
        d, u = heappop(heap)
        if d > dist[u]:
            continue
        if u == target:
            break
        for v, w in rows[u]:
            if v in banned_v:
                continue
            if allowed is not None and v not in allowed:
                continue
            if banned_p and (u, v) in banned_p:
                continue
            nd = d + w
            if nd < dist[v]:
                if touched is not None and dist[v] == _INF:
                    touched.append(v)
                dist[v] = nd
                pred[v] = u
                heappush(heap, (nd, v))
    return dist, pred, touched


def _dijkstra_arrays_profiled(
    prof,
    rows: Sequence[Sequence[Tuple[int, float]]],
    num_vertices: int,
    source: int,
    target: int,
    allowed: Optional[Set[int]],
    banned_vertices: Optional[Set[int]],
    banned_pairs: Optional[Set[Tuple[int, int]]],
    track_touched: bool,
) -> Tuple[List[float], List[int], Optional[List[int]]]:
    """Counting twin of :func:`dijkstra_arrays`.

    One general loop covers all three unprofiled variants: with empty ban
    collections every extra membership test is a constant-false, so the
    relaxation sequence — and the returned dist/pred/touched — is
    bit-identical to whichever specialised loop would have run.
    """
    dist: List[float] = [_INF] * num_vertices
    pred: List[int] = [-1] * num_vertices
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    banned_v = banned_vertices if banned_vertices is not None else ()
    banned_p = banned_pairs if banned_pairs is not None else ()
    touched: Optional[List[int]] = [source] if track_touched else None
    settled = relaxed = pushes = 0
    peak = 1
    while heap:
        d, u = heappop(heap)
        if d > dist[u]:
            continue
        settled += 1
        if u == target:
            break
        for v, w in rows[u]:
            if banned_v and v in banned_v:
                continue
            if allowed is not None and v not in allowed:
                continue
            if banned_p and (u, v) in banned_p:
                continue
            nd = d + w
            if nd < dist[v]:
                if touched is not None and dist[v] == _INF:
                    touched.append(v)
                dist[v] = nd
                pred[v] = u
                heappush(heap, (nd, v))
                relaxed += 1
                pushes += 1
                if len(heap) > peak:
                    peak = len(heap)
    prof.searches += 1
    prof.settled += settled
    prof.relaxed += relaxed
    prof.heap_pushes += pushes
    if peak > prof.heap_peak:
        prof.heap_peak = peak
    return dist, pred, touched


def dijkstra_arrays_multi(
    rows: Sequence[Sequence[Tuple[int, float]]],
    num_vertices: int,
    source: int,
    targets: Iterable[int],
) -> Tuple[List[float], List[int], List[int], List[int]]:
    """One-to-many Dijkstra: settle until *every* target is settled.

    Single source, a set of targets: the search runs exactly like the
    unconstrained :func:`dijkstra_arrays` loop but stops as soon as the last
    target pops fresh, collapsing ``len(targets)`` point-to-point searches
    into one run.  Relaxation order is a prefix of the full run's, so the
    distances and predecessors of every *settled* vertex — in particular of
    every reachable target — are bit-identical to a full single-source
    Dijkstra.

    Returns ``(dist, pred, settled_targets, touched)`` where
    ``settled_targets`` lists the target indices that were settled
    (reachable from the source), in settle order, and ``touched`` lists
    every labelled index (source first) so callers can rebuild id-space
    dictionaries in O(labelled).  Entries of ``dist``/``pred`` for
    labelled-but-unsettled vertices are tentative; callers must only rely
    on settled targets and the predecessor chains leading to them (every
    vertex on a shortest path to a settled target is itself settled).
    """
    prof = kernel_counters()
    if prof is not None:
        return _dijkstra_arrays_multi_profiled(prof, rows, num_vertices, source, targets)
    dist: List[float] = [_INF] * num_vertices
    pred: List[int] = [-1] * num_vertices
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    remaining = set(targets)
    settled_targets: List[int] = []
    touched: List[int] = [source]
    if source in remaining:
        remaining.discard(source)
        settled_targets.append(source)
    if not remaining:
        return dist, pred, settled_targets, touched
    while heap:
        d, u = heappop(heap)
        if d > dist[u]:
            continue
        if u in remaining:
            remaining.discard(u)
            settled_targets.append(u)
            if not remaining:
                break
        for v, w in rows[u]:
            nd = d + w
            if nd < dist[v]:
                if dist[v] == _INF:
                    touched.append(v)
                dist[v] = nd
                pred[v] = u
                heappush(heap, (nd, v))
    return dist, pred, settled_targets, touched


def _dijkstra_arrays_multi_profiled(
    prof,
    rows: Sequence[Sequence[Tuple[int, float]]],
    num_vertices: int,
    source: int,
    targets: Iterable[int],
) -> Tuple[List[float], List[int], List[int], List[int]]:
    """Counting twin of :func:`dijkstra_arrays_multi` (same sequence)."""
    dist: List[float] = [_INF] * num_vertices
    pred: List[int] = [-1] * num_vertices
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    remaining = set(targets)
    settled_targets: List[int] = []
    touched: List[int] = [source]
    if source in remaining:
        remaining.discard(source)
        settled_targets.append(source)
    prof.searches += 1
    if not remaining:
        return dist, pred, settled_targets, touched
    settled = relaxed = pushes = 0
    peak = 1
    while heap:
        d, u = heappop(heap)
        if d > dist[u]:
            continue
        settled += 1
        if u in remaining:
            remaining.discard(u)
            settled_targets.append(u)
            if not remaining:
                break
        for v, w in rows[u]:
            nd = d + w
            if nd < dist[v]:
                if dist[v] == _INF:
                    touched.append(v)
                dist[v] = nd
                pred[v] = u
                heappush(heap, (nd, v))
                relaxed += 1
                pushes += 1
                if len(heap) > peak:
                    peak = len(heap)
    prof.settled += settled
    prof.relaxed += relaxed
    prof.heap_pushes += pushes
    if peak > prof.heap_peak:
        prof.heap_peak = peak
    return dist, pred, settled_targets, touched


def bounded_dijkstra_arrays(
    rows: Sequence[Sequence[Tuple[int, float]]],
    num_vertices: int,
    source: int,
    target: int,
    bounds: Optional[Sequence[float]] = None,
    cutoff: float = _INF,
    allowed: Optional[Set[int]] = None,
    banned_vertices: Optional[Set[int]] = None,
    banned_pairs: Optional[Set[Tuple[int, int]]] = None,
    track_touched: bool = False,
) -> Tuple[List[float], List[int], bool, Optional[List[int]]]:
    """Goal-directed *bound-pruned* Dijkstra (order-preserving, exact paths).

    The pruned counterpart of the spur-search configuration of
    :func:`dijkstra_arrays`: an admissible per-vertex lower bound to the
    target (``bounds[v] <= dist(v, target)``, with ``bounds[target] == 0``)
    plus an upper bound ``cutoff`` on the acceptable source→target distance.
    A relaxation is *discarded at push time* when its best possible total,
    ``g(v) + bounds[v]``, strictly exceeds ``cutoff`` — it provably cannot
    lie on a source→target path of distance ``<= cutoff``.

    Unlike classical A*, the heap keys stay plain ``(g, v)``: the heuristic
    prunes but never *reorders* the search.  That is what makes the result
    bit-identical to the unpruned search even on graphs with distance ties
    (this repository's road networks have integer base weights): every
    vertex on the unpruned run's returned path satisfies
    ``g(v) + bounds(v) <= g(v) + dist(v, target) <= dist(source, target)
    <= cutoff`` and therefore survives pruning with its exact ``g`` and
    predecessor, and the relative pop order of surviving heap entries is
    unchanged because their keys are unchanged.  Classical f-ordered A*
    (:func:`astar_arrays`) settles fewer vertices but may return a
    different — equally short — path on ties, so the query stack uses it
    only where the *distance* alone is consumed.

    Returns ``(dist, pred, found, touched)``; ``found`` is ``True`` iff the
    target was settled, in which case ``dist[target]`` is its exact
    distance (necessarily ``<= cutoff`` up to the pruning rule: a target
    whose true distance exceeds ``cutoff`` is reported unreachable).
    ``touched`` lists the labelled indices (source first) when
    ``track_touched`` is ``True`` — callers rebuilding id-space
    dictionaries stay O(labelled) instead of O(V) — and is ``None``
    otherwise (the lean spur-search configuration).
    """
    prof = kernel_counters()
    if prof is not None:
        return _bounded_dijkstra_arrays_profiled(
            prof, rows, num_vertices, source, target, bounds, cutoff,
            allowed, banned_vertices, banned_pairs, track_touched,
        )
    dist: List[float] = [_INF] * num_vertices
    pred: List[int] = [-1] * num_vertices
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    banned_v = banned_vertices if banned_vertices is not None else ()
    banned_p = banned_pairs if banned_pairs is not None else ()
    touched: Optional[List[int]] = [source] if track_touched else None
    found = False
    while heap:
        d, u = heappop(heap)
        if d > dist[u]:
            continue
        if u == target:
            found = True
            break
        for v, w in rows[u]:
            if v in banned_v:
                continue
            if allowed is not None and v not in allowed:
                continue
            if banned_p and (u, v) in banned_p:
                continue
            nd = d + w
            if nd < dist[v]:
                if bounds is None:
                    if nd > cutoff:
                        continue
                elif nd + bounds[v] > cutoff:
                    continue
                if touched is not None and dist[v] == _INF:
                    touched.append(v)
                dist[v] = nd
                pred[v] = u
                heappush(heap, (nd, v))
    return dist, pred, found, touched


def _bounded_dijkstra_arrays_profiled(
    prof,
    rows: Sequence[Sequence[Tuple[int, float]]],
    num_vertices: int,
    source: int,
    target: int,
    bounds: Optional[Sequence[float]],
    cutoff: float,
    allowed: Optional[Set[int]],
    banned_vertices: Optional[Set[int]],
    banned_pairs: Optional[Set[Tuple[int, int]]],
    track_touched: bool,
) -> Tuple[List[float], List[int], bool, Optional[List[int]]]:
    """Counting twin of :func:`bounded_dijkstra_arrays` (same sequence).

    ``pruned`` counts relaxations discarded by the bound test — the
    push-time pruning the paper's Theorem-3 cutoff enables.
    """
    dist: List[float] = [_INF] * num_vertices
    pred: List[int] = [-1] * num_vertices
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    banned_v = banned_vertices if banned_vertices is not None else ()
    banned_p = banned_pairs if banned_pairs is not None else ()
    touched: Optional[List[int]] = [source] if track_touched else None
    found = False
    settled = relaxed = pruned = pushes = 0
    peak = 1
    while heap:
        d, u = heappop(heap)
        if d > dist[u]:
            continue
        settled += 1
        if u == target:
            found = True
            break
        for v, w in rows[u]:
            if banned_v and v in banned_v:
                continue
            if allowed is not None and v not in allowed:
                continue
            if banned_p and (u, v) in banned_p:
                continue
            nd = d + w
            if nd < dist[v]:
                if bounds is None:
                    if nd > cutoff:
                        pruned += 1
                        continue
                elif nd + bounds[v] > cutoff:
                    pruned += 1
                    continue
                if touched is not None and dist[v] == _INF:
                    touched.append(v)
                dist[v] = nd
                pred[v] = u
                heappush(heap, (nd, v))
                relaxed += 1
                pushes += 1
                if len(heap) > peak:
                    peak = len(heap)
    prof.searches += 1
    prof.settled += settled
    prof.relaxed += relaxed
    prof.pruned += pruned
    prof.heap_pushes += pushes
    if peak > prof.heap_peak:
        prof.heap_peak = peak
    return dist, pred, found, touched


def astar_arrays(
    rows: Sequence[Sequence[Tuple[int, float]]],
    num_vertices: int,
    source: int,
    target: int,
    bounds: Optional[Sequence[float]] = None,
    cutoff: float = _INF,
) -> Tuple[float, List[float], List[int]]:
    """Classical A* over snapshot rows: heap ordered by ``f = g + bounds[v]``.

    ``bounds`` must be an *admissible* per-vertex lower bound of the
    distance to ``target`` (``bounds[target] == 0``); with ``bounds=None``
    this degenerates to plain early-exit Dijkstra.  Because the stale-entry
    scheme re-expands a vertex whenever its tentative distance improves,
    admissibility alone (without consistency) suffices for the returned
    *distance* to be exact.

    The settle order — and therefore the predecessor choice among
    equal-length shortest paths — differs from Dijkstra's, so the query
    stack calls this only for *distance-only* probes (e.g. the direct
    within-subgraph distance feeding skeleton augmentation), where ties
    cannot leak into results.  Path-returning searches use
    :func:`bounded_dijkstra_arrays` instead.

    Returns ``(distance, dist, pred)``; ``distance`` is ``inf`` when the
    target is unreachable (or only reachable above ``cutoff``).
    """
    prof = kernel_counters()
    if prof is not None:
        return _astar_arrays_profiled(
            prof, rows, num_vertices, source, target, bounds, cutoff
        )
    dist: List[float] = [_INF] * num_vertices
    pred: List[int] = [-1] * num_vertices
    dist[source] = 0.0
    start_f = bounds[source] if bounds is not None else 0.0
    if start_f > cutoff:
        return _INF, dist, pred
    # Heap entries are (f, g, vertex): f orders the search, g drives the
    # stale-entry test without re-deriving it from f (float subtraction
    # would reintroduce rounding).
    heap: List[Tuple[float, float, int]] = [(start_f, 0.0, source)]
    while heap:
        f, g, u = heappop(heap)
        if g > dist[u]:
            continue
        if u == target:
            return g, dist, pred
        for v, w in rows[u]:
            ng = g + w
            if ng < dist[v]:
                nf = ng + (bounds[v] if bounds is not None else 0.0)
                if nf > cutoff:
                    continue
                dist[v] = ng
                pred[v] = u
                heappush(heap, (nf, ng, v))
    return _INF, dist, pred


def _astar_arrays_profiled(
    prof,
    rows: Sequence[Sequence[Tuple[int, float]]],
    num_vertices: int,
    source: int,
    target: int,
    bounds: Optional[Sequence[float]],
    cutoff: float,
) -> Tuple[float, List[float], List[int]]:
    """Counting twin of :func:`astar_arrays` (same f-ordered sequence)."""
    dist: List[float] = [_INF] * num_vertices
    pred: List[int] = [-1] * num_vertices
    dist[source] = 0.0
    prof.searches += 1
    start_f = bounds[source] if bounds is not None else 0.0
    if start_f > cutoff:
        prof.pruned += 1
        return _INF, dist, pred
    heap: List[Tuple[float, float, int]] = [(start_f, 0.0, source)]
    settled = relaxed = pruned = pushes = 0
    peak = 1
    result = _INF
    while heap:
        f, g, u = heappop(heap)
        if g > dist[u]:
            continue
        settled += 1
        if u == target:
            result = g
            break
        for v, w in rows[u]:
            ng = g + w
            if ng < dist[v]:
                nf = ng + (bounds[v] if bounds is not None else 0.0)
                if nf > cutoff:
                    pruned += 1
                    continue
                dist[v] = ng
                pred[v] = u
                heappush(heap, (nf, ng, v))
                relaxed += 1
                pushes += 1
                if len(heap) > peak:
                    peak = len(heap)
    prof.settled += settled
    prof.relaxed += relaxed
    prof.pruned += pruned
    prof.heap_pushes += pushes
    if peak > prof.heap_peak:
        prof.heap_peak = peak
    return result, dist, pred


def reconstruct_indices(pred: Sequence[int], source: int, target: int) -> List[int]:
    """Rebuild the index-space vertex sequence from ``source`` to ``target``."""
    sequence = [target]
    while sequence[-1] != source:
        sequence.append(pred[sequence[-1]])
    sequence.reverse()
    return sequence

"""Array-backed compute kernel shared by every shortest-path consumer.

This package is the performance layer between the mutable graph objects
(:mod:`repro.graph`) and the algorithm/consumer layers above them (see
``ARCHITECTURE.md`` at the repository root for the full layer stack):

* :class:`~repro.kernel.snapshot.CSRSnapshot` — an immutable-topology,
  refreshable-weights view of a :class:`~repro.graph.graph.DynamicGraph`,
  :class:`~repro.graph.subgraph.Subgraph` or
  :class:`~repro.core.skeleton.SkeletonGraph`, stored as a vertex interning
  table plus flat CSR arrays (``indptr`` / ``indices`` / ``weights``).
* :mod:`~repro.kernel.primitives` — array-native single-source shortest-path
  primitives operating purely in index space, with O(1) edge-weight lookup
  and cheap vertex/edge ban sets for Yen-style spur searches.
* :mod:`~repro.kernel.wavefront` — the batch-native tier: frontier-at-a-time
  (delta-stepping) searches and multi-source batching over the same CSR
  arrays via numpy scatter operations.  Distance-identical to the heap
  primitives but tie-order free, and optional (numpy-gated with heap
  fallbacks) — this is what the ``fast`` kernel tier selects.

The generic wrappers in :mod:`repro.algorithms.dijkstra` and
:mod:`repro.algorithms.yen` accept either a plain graph-like object (the
dict-based reference path) or a snapshot (the fast path) and produce
bit-identical results for both.
"""

from .heuristics import (
    HEURISTICS,
    DTLPLowerBounds,
    LandmarkLowerBounds,
    validate_heuristic,
)
from .primitives import (
    astar_arrays,
    bounded_dijkstra_arrays,
    dijkstra_arrays,
    dijkstra_arrays_multi,
    reconstruct_indices,
)
from .snapshot import CSRSnapshot
from .wavefront import (
    batch_one_to_many_paths,
    batch_shortest_paths,
    dijkstra_arrays_batch,
    numpy_available,
    one_to_many_distances,
    wavefront_sssp,
)

__all__ = [
    "CSRSnapshot",
    "HEURISTICS",
    "DTLPLowerBounds",
    "LandmarkLowerBounds",
    "validate_heuristic",
    "astar_arrays",
    "batch_one_to_many_paths",
    "batch_shortest_paths",
    "bounded_dijkstra_arrays",
    "dijkstra_arrays",
    "dijkstra_arrays_batch",
    "dijkstra_arrays_multi",
    "numpy_available",
    "one_to_many_distances",
    "reconstruct_indices",
    "wavefront_sssp",
]

"""Chaos-grade elasticity testing: seeded fault plans + a deterministic
injection harness with recovery SLO scoring.

Faults are pinned to query micro-batch indices (never wall clock), so a
``(workload, FaultPlan)`` pair replays identically on every execution
backend — the harness asserts zero wrong answers against a fault-free
oracle run and byte-identical event logs across repeats.
"""

from .harness import (
    AnswerSignature,
    BatchSample,
    ChaosEvent,
    ChaosHarness,
    ChaosReport,
    ChaosRunResult,
    ChaosWorkload,
    RecoverySample,
    generate_chaos_workload,
)
from .plan import FAULT_KINDS, ChaosError, FaultEvent, FaultPlan

__all__ = [
    "FAULT_KINDS",
    "AnswerSignature",
    "BatchSample",
    "ChaosError",
    "ChaosEvent",
    "ChaosHarness",
    "ChaosReport",
    "ChaosRunResult",
    "ChaosWorkload",
    "FaultEvent",
    "FaultPlan",
    "RecoverySample",
    "generate_chaos_workload",
]

"""Seeded, replayable fault plans.

A :class:`FaultPlan` is the entire source of nondeterminism in a chaos
run, and it is *pinned to batch indices, not wall clock*: every event
names the query micro-batch it fires at, so the same plan injected into
the same workload produces the same fault sequence on every execution
backend and on every repeat — which is what lets the harness assert
byte-identical answers and event logs (see :mod:`repro.chaos.harness`).

Victim selection may be deferred (``worker_id=None``): the concrete
worker is then drawn at injection time from a ``random.Random`` seeded
with ``(plan seed, batch index, event ordinal)`` over the *alive* worker
set — deterministic given the run's history, while staying valid across
earlier kills and joins the plan itself caused.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..graph.errors import ReproError

__all__ = ["FAULT_KINDS", "FaultEvent", "FaultPlan", "ChaosError"]

#: Supported fault kinds.  ``kill`` loses a worker (failover surgery);
#: ``join`` adds one (scale-up surgery); ``stall`` pauses a worker for
#: ``duration_batches`` batches; ``slow`` degrades one by ``factor``.
FAULT_KINDS = ("kill", "join", "stall", "slow")


class ChaosError(ReproError):
    """Invalid fault plan or harness configuration."""


@dataclass(frozen=True)
class FaultEvent:
    """One fault, pinned to a query micro-batch.

    Attributes
    ----------
    batch_index:
        The micro-batch the event fires at (before the batch runs, or —
        for a ``kill`` with ``offset`` — after that many of its queries).
    kind:
        One of :data:`FAULT_KINDS`.
    worker_id:
        The victim (ignored for ``join``), or ``None`` to draw a live
        worker at injection time from the plan's seed.
    duration_batches:
        How many batches a ``stall``/``slow`` lasts.
    factor:
        Slowdown multiplier of a ``slow`` worker.
    offset:
        For ``kill``: number of the batch's queries served *before* the
        worker dies — the mid-batch death the harness asserts answer
        correctness across.  ``None`` kills at the batch boundary.
    """

    batch_index: int
    kind: str
    worker_id: Optional[int] = None
    duration_batches: int = 1
    factor: float = 2.0
    offset: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ChaosError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.batch_index < 0:
            raise ChaosError(f"batch_index must be >= 0, got {self.batch_index}")
        if self.duration_batches < 1:
            raise ChaosError("duration_batches must be >= 1")
        if self.factor < 1.0:
            raise ChaosError(f"slow factor must be >= 1.0, got {self.factor}")
        if self.offset is not None and self.offset < 0:
            raise ChaosError("offset must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, seeded set of fault events for one chaos run."""

    seed: int
    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "events", tuple(sorted(self.events, key=lambda e: e.batch_index))
        )

    def by_batch(self) -> Dict[int, Tuple[FaultEvent, ...]]:
        """Events grouped by batch index (insertion order preserved)."""
        grouped: Dict[int, list] = {}
        for event in self.events:
            grouped.setdefault(event.batch_index, []).append(event)
        return {index: tuple(events) for index, events in grouped.items()}

    def victim_rng(self, batch_index: int, ordinal: int) -> random.Random:
        """The deferred-victim RNG for one event (string-seeded: stable
        across processes and interpreter runs, unlike hash-based seeds)."""
        return random.Random(f"faultplan:{self.seed}:{batch_index}:{ordinal}")

    @classmethod
    def generate(
        cls,
        seed: int,
        num_batches: int,
        kinds: Sequence[str] = ("kill", "join", "stall"),
        rate: float = 0.2,
        batch_size: Optional[int] = None,
    ) -> "FaultPlan":
        """Draw a random plan: each batch suffers one event with ``rate``.

        ``batch_size`` (when known) lets generated kills land *mid-batch*
        — a random split point inside the batch — instead of only at
        batch boundaries.  Batch 0 is left fault-free so every run has at
        least one clean baseline batch for recovery scoring.
        """
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ChaosError(f"unknown fault kind {kind!r}")
        if not 0.0 <= rate <= 1.0:
            raise ChaosError(f"rate must be in [0, 1], got {rate}")
        rng = random.Random(seed)
        events = []
        for index in range(1, num_batches):
            if rng.random() >= rate:
                continue
            kind = kinds[rng.randrange(len(kinds))]
            offset = None
            if kind == "kill" and batch_size and rng.random() < 0.5:
                offset = rng.randrange(1, batch_size) if batch_size > 1 else None
            events.append(
                FaultEvent(
                    batch_index=index,
                    kind=kind,
                    duration_batches=(
                        rng.randrange(1, 3) if kind in ("stall", "slow") else 1
                    ),
                    factor=round(1.5 + rng.random(), 3),
                    offset=offset,
                )
            )
        return cls(seed=seed, events=tuple(events))

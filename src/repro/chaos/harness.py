"""Deterministic fault-injection harness.

The harness replays one pre-generated workload (query micro-batches
interleaved with pre-generated traffic rounds) through a fresh
:class:`~repro.distributed.topology.StormTopology`, injecting the faults
of a :class:`~repro.chaos.plan.FaultPlan` at their pinned batch indices,
and compares every answer against a fault-free **oracle** run of the
identical workload.

Determinism contract
--------------------
For a fixed workload and plan, two runs — on any execution backend —
produce byte-identical:

* answer signatures (vertex tuples + rounded distances, per query),
* fault/recovery event logs (:class:`ChaosEvent` tuples), and
* per-batch deterministic counters (communication units, message counts).

Only wall-clock fields (batch seconds, qps, recovery seconds) vary
between runs; they feed the recovery SLOs, never the correctness checks.
Faults are pinned to batch indices, so "kill worker 2 after query 7 of
batch 3" replays exactly — there is no wall-clock race to win.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.dtlp import DTLP
from ..distributed.rebalance import ElasticityStats
from ..distributed.topology import StormTopology
from ..dynamics.traffic import TrafficModel
from ..graph.graph import WeightUpdate
from ..workloads.queries import KSPQuery, QueryGenerator
from .plan import ChaosError, FaultEvent, FaultPlan

__all__ = [
    "AnswerSignature",
    "BatchSample",
    "ChaosEvent",
    "ChaosHarness",
    "ChaosReport",
    "ChaosRunResult",
    "ChaosWorkload",
    "RecoverySample",
    "generate_chaos_workload",
]

#: One query's answer, reduced to a comparable value: a tuple of
#: ``(path vertices, distance rounded to 9 decimals)`` per returned path.
AnswerSignature = Tuple[Tuple[Tuple[int, ...], float], ...]


@dataclass(frozen=True)
class ChaosWorkload:
    """A replayable workload: query batches plus pre-generated traffic.

    ``updates`` maps a batch index to the weight-update round applied
    *before* that batch.  Updates are pre-generated against the initial
    weights (see :meth:`~repro.dynamics.traffic.TrafficModel.pregenerate`),
    so replaying the workload on a freshly built graph reproduces the
    exact snapshot sequence — the property the oracle comparison needs.
    """

    batches: Tuple[Tuple[KSPQuery, ...], ...]
    updates: Dict[int, Tuple[WeightUpdate, ...]] = field(default_factory=dict)

    @property
    def total_queries(self) -> int:
        return sum(len(batch) for batch in self.batches)


def generate_chaos_workload(
    graph,
    num_batches: int,
    batch_size: int,
    k: int = 2,
    seed: int = 0,
    update_every: int = 0,
    alpha: float = 0.25,
    tau: float = 0.3,
    min_hops: int = 2,
) -> ChaosWorkload:
    """Build a seeded workload over ``graph``.

    When ``update_every`` is positive, a pre-generated traffic round is
    applied before every ``update_every``-th batch (batch 0 excluded, so
    the first batch always runs on the build-time snapshot).
    """
    if num_batches < 1 or batch_size < 1:
        raise ChaosError("num_batches and batch_size must be >= 1")
    queries = QueryGenerator(graph, seed=seed, min_hops=min_hops).generate(
        num_batches * batch_size, k=k
    )
    batches = tuple(
        tuple(queries[index * batch_size : (index + 1) * batch_size])
        for index in range(num_batches)
    )
    updates: Dict[int, Tuple[WeightUpdate, ...]] = {}
    if update_every > 0:
        indices = [i for i in range(1, num_batches) if i % update_every == 0]
        model = TrafficModel(graph, alpha=alpha, tau=tau, seed=seed + 1)
        for index, round_updates in zip(indices, model.pregenerate(len(indices))):
            updates[index] = tuple(round_updates)
    return ChaosWorkload(batches=batches, updates=updates)


@dataclass(frozen=True)
class ChaosEvent:
    """One injected fault as it actually landed (the deterministic log)."""

    batch_index: int
    kind: str
    worker_id: int
    #: Whether the event took effect (a kill is skipped when one worker
    #: is left; a join is skipped at the pool ceiling).
    applied: bool
    subgraphs_moved: int = 0
    offset: Optional[int] = None
    workers_alive: int = 0

    def as_tuple(self) -> Tuple:
        return (
            self.batch_index,
            self.kind,
            self.worker_id,
            self.applied,
            self.subgraphs_moved,
            self.offset,
            self.workers_alive,
        )


@dataclass(frozen=True)
class BatchSample:
    """Per-batch telemetry: deterministic counters + wall-clock timing."""

    batch_index: int
    queries: int
    #: Deterministic (identical across backends and repeats).
    communication_units: int
    messages: int
    #: Wall clock — includes any fault surgery injected during the batch
    #: plus simulated stall/slowdown penalties; feeds qps and SLOs only.
    wall_seconds: float

    @property
    def qps(self) -> float:
        return self.queries / max(self.wall_seconds, 1e-9)


@dataclass(frozen=True)
class RecoverySample:
    """Recovery SLO for one applied fault event.

    The baseline is the median qps of the clean batches before the first
    fault; the system has *recovered* at the first post-fault batch whose
    qps is back above ``recovery_fraction`` of that baseline.
    """

    kind: str
    batch_index: int
    worker_id: int
    recovered: bool
    recovery_batches: int
    recovery_seconds: float
    qps_baseline: float
    qps_dip: float
    qps_recovered: float


@dataclass
class ChaosRunResult:
    """Everything one replay produced (chaos or oracle)."""

    signatures: List[AnswerSignature]
    events: List[ChaosEvent]
    samples: List[BatchSample]
    elasticity: ElasticityStats
    wall_seconds: float

    def deterministic_signature(self) -> Tuple:
        """The portion of the run that must be identical across repeats
        and backends: answers, event log, per-batch counters."""
        return (
            tuple(self.signatures),
            tuple(event.as_tuple() for event in self.events),
            tuple(
                (s.batch_index, s.queries, s.communication_units, s.messages)
                for s in self.samples
            ),
        )


@dataclass
class ChaosReport:
    """Outcome of a chaos run scored against its fault-free oracle."""

    total_queries: int
    wrong_answers: int
    dropped_queries: int
    retried_queries: int
    workers_joined: int
    workers_lost: int
    workers_retired: int
    join_transfer_units: int
    subgraphs_recovered: int
    events: List[ChaosEvent]
    recoveries: List[RecoverySample]
    oracle: ChaosRunResult
    chaos: ChaosRunResult

    @property
    def ok(self) -> bool:
        """Zero wrong answers and zero dropped queries."""
        return self.wrong_answers == 0 and self.dropped_queries == 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "total_queries": self.total_queries,
            "wrong_answers": self.wrong_answers,
            "dropped_queries": self.dropped_queries,
            "retried_queries": self.retried_queries,
            "workers_joined": self.workers_joined,
            "workers_lost": self.workers_lost,
            "workers_retired": self.workers_retired,
            "join_transfer_units": self.join_transfer_units,
            "subgraphs_recovered": self.subgraphs_recovered,
            "events": [list(event.as_tuple()) for event in self.events],
            "recoveries": [
                {
                    "fault": r.kind,
                    "batch_index": r.batch_index,
                    "worker_id": r.worker_id,
                    "recovered": r.recovered,
                    "recovery_batches": r.recovery_batches,
                    "recovery_ms": r.recovery_seconds * 1e3,
                    "qps_baseline": r.qps_baseline,
                    "qps_dip": r.qps_dip,
                    "qps_recovered": r.qps_recovered,
                }
                for r in self.recoveries
            ],
        }


def _signature(result) -> AnswerSignature:
    return tuple(
        (tuple(path.vertices), round(path.distance, 9)) for path in result.paths
    )


class ChaosHarness:
    """Replays a workload under a fault plan and scores it.

    Parameters
    ----------
    builder:
        Zero-argument callable returning a **freshly built**
        :class:`~repro.core.dtlp.DTLP` (graph included).  Called once per
        run, so the chaos run and its oracle each start from the same
        pristine snapshot.
    num_workers, executor, kernel, heuristic, pruning, rebalance,
    autoscale, store_path:
        Forwarded to :class:`~repro.distributed.topology.StormTopology`
        for the *chaos* run.  The oracle always runs on the serial
        backend with faults and autoscaling disabled — the reference
        answers must not depend on the machinery under test.
    stall_seconds:
        Simulated wall-clock penalty per stalled worker per batch
        (bookkeeping only; pinned to batches, it never perturbs answers).
    recovery_fraction:
        Fraction of the pre-fault baseline qps at which a post-fault
        batch counts as recovered.
    """

    def __init__(
        self,
        builder: Callable[[], DTLP],
        num_workers: int = 4,
        executor: Optional[str] = None,
        kernel: str = "snapshot",
        heuristic: str = "none",
        pruning: bool = True,
        rebalance=None,
        autoscale=None,
        store_path: Optional[str] = None,
        stall_seconds: float = 0.02,
        recovery_fraction: float = 0.7,
    ) -> None:
        if not 0.0 < recovery_fraction <= 1.0:
            raise ChaosError("recovery_fraction must be in (0, 1]")
        self._builder = builder
        self._num_workers = num_workers
        self._executor = executor
        self._kernel = kernel
        self._heuristic = heuristic
        self._pruning = pruning
        self._rebalance = rebalance
        self._autoscale = autoscale
        self._store_path = store_path
        self._stall_seconds = stall_seconds
        self._recovery_fraction = recovery_fraction

    # ------------------------------------------------------------------
    # Single replay
    # ------------------------------------------------------------------

    def run(
        self,
        workload: ChaosWorkload,
        plan: Optional[FaultPlan] = None,
        executor: Optional[str] = None,
        autoscale=None,
        _oracle: bool = False,
    ) -> ChaosRunResult:
        """Replay ``workload`` once, injecting ``plan`` (if any)."""
        dtlp = self._builder()
        graph = dtlp.graph
        topology = StormTopology(
            dtlp,
            num_workers=self._num_workers,
            kernel=self._kernel,
            executor=(executor or self._executor),
            heuristic=self._heuristic,
            pruning=self._pruning,
            rebalance=None if _oracle else self._rebalance,
            autoscale=None if _oracle else (autoscale or self._autoscale),
            store_path=None if _oracle else self._store_path,
        )
        by_batch = plan.by_batch() if plan is not None else {}
        signatures: List[AnswerSignature] = []
        events: List[ChaosEvent] = []
        samples: List[BatchSample] = []
        # Active stall/slow handicaps: worker -> [kind, remaining, factor].
        handicaps: Dict[int, List] = {}
        submitted = 0
        run_started = time.perf_counter()
        try:
            for batch_index, batch in enumerate(workload.batches):
                started = time.perf_counter()
                round_updates = workload.updates.get(batch_index)
                if round_updates:
                    graph.apply_updates(round_updates)
                    topology.submit_weight_updates(round_updates)
                batch_events = by_batch.get(batch_index, ())
                boundary = [e for e in batch_events if not self._is_mid_batch(e)]
                mid = [e for e in batch_events if self._is_mid_batch(e)]
                for ordinal, event in enumerate(batch_events):
                    if event in boundary:
                        events.append(
                            self._inject(
                                topology, plan, event, ordinal, len(batch), handicaps
                            )
                        )
                submitted += self._run_batch(
                    topology,
                    plan,
                    batch,
                    batch_events,
                    mid,
                    signatures,
                    events,
                    handicaps,
                    submitted,
                )
                wall = time.perf_counter() - started
                wall = self._apply_handicaps(wall, handicaps)
                cluster = topology.cluster
                messages = cluster.master.stats.messages_sent + sum(
                    worker.stats.messages_sent for worker in cluster.workers
                )
                samples.append(
                    BatchSample(
                        batch_index=batch_index,
                        queries=len(batch),
                        communication_units=cluster.total_communication_units(),
                        messages=messages,
                        wall_seconds=wall,
                    )
                )
            elasticity = replace(topology.elasticity)
        finally:
            topology.close()
        return ChaosRunResult(
            signatures=signatures,
            events=events,
            samples=samples,
            elasticity=elasticity,
            wall_seconds=time.perf_counter() - run_started,
        )

    @staticmethod
    def _is_mid_batch(event: FaultEvent) -> bool:
        return event.kind == "kill" and event.offset is not None and event.offset > 0

    def _run_batch(
        self,
        topology: StormTopology,
        plan: Optional[FaultPlan],
        batch: Sequence[KSPQuery],
        batch_events: Sequence[FaultEvent],
        mid: List[FaultEvent],
        signatures: List[AnswerSignature],
        events: List[ChaosEvent],
        handicaps: Dict[int, List],
        submitted: int,
    ) -> int:
        """Run one batch, splitting it at mid-batch kill offsets.

        Only the first segment resets the cluster's deterministic batch
        counters, so the batch's sample reads as one unit of work no
        matter how many faults sliced it.
        """
        cuts = sorted(
            {min(e.offset, len(batch)) for e in mid if e.offset is not None}
        )
        segments = []
        start = 0
        for cut in cuts:
            segments.append((start, cut))
            start = cut
        segments.append((start, len(batch)))
        first = True
        for seg_start, seg_end in segments:
            if seg_start > 0:
                remaining = len(batch) - seg_start
                for event in mid:
                    if min(event.offset, len(batch)) == seg_start:
                        ordinal = list(batch_events).index(event)
                        events.append(
                            self._inject(
                                topology,
                                plan,
                                event,
                                ordinal,
                                remaining,
                                handicaps,
                                submitted=submitted + seg_start,
                            )
                        )
            if seg_end > seg_start:
                report = topology.run_queries(
                    list(batch[seg_start:seg_end]), reset_metrics=first
                )
                first = False
                signatures.extend(_signature(r) for r in report.results)
        return len(batch)

    def _inject(
        self,
        topology: StormTopology,
        plan: Optional[FaultPlan],
        event: FaultEvent,
        ordinal: int,
        upcoming_queries: int,
        handicaps: Dict[int, List],
        submitted: Optional[int] = None,
    ) -> ChaosEvent:
        """Apply one fault event to the live topology."""
        assert plan is not None
        alive = topology.alive_workers()
        if event.kind == "join":
            report = topology.add_worker()
            return ChaosEvent(
                batch_index=event.batch_index,
                kind="join",
                worker_id=report.worker_id,
                applied=True,
                subgraphs_moved=report.subgraphs_migrated,
                offset=event.offset,
                workers_alive=len(topology.alive_workers()),
            )
        victim = event.worker_id
        if victim is None or victim not in alive:
            rng = plan.victim_rng(event.batch_index, ordinal)
            victim = sorted(alive)[rng.randrange(len(alive))]
        if event.kind == "kill":
            if len(alive) <= 1:
                return ChaosEvent(
                    batch_index=event.batch_index,
                    kind="kill",
                    worker_id=victim,
                    applied=False,
                    offset=event.offset,
                    workers_alive=len(alive),
                )
            retried = self._count_retried(
                topology, victim, upcoming_queries, submitted
            )
            migrated = topology.fail_worker(victim)
            topology.elasticity.retried_queries += retried
            handicaps.pop(victim, None)
            return ChaosEvent(
                batch_index=event.batch_index,
                kind="kill",
                worker_id=victim,
                applied=True,
                subgraphs_moved=migrated,
                offset=event.offset,
                workers_alive=len(topology.alive_workers()),
            )
        # stall / slow: deterministic-log + wall-clock bookkeeping only.
        handicaps[victim] = [event.kind, event.duration_batches, event.factor]
        return ChaosEvent(
            batch_index=event.batch_index,
            kind=event.kind,
            worker_id=victim,
            applied=True,
            offset=event.offset,
            workers_alive=len(alive),
        )

    def _count_retried(
        self,
        topology: StormTopology,
        victim: int,
        upcoming_queries: int,
        submitted: Optional[int],
    ) -> int:
        """Queries that were bound for the victim's QueryBolt and will be
        re-routed (re-tried) after the failover surgery: the remainder of
        the current batch whose round-robin slot — under the *pre-kill*
        bolt list — lands on the dying worker."""
        bolts = list(topology.query_bolts)
        if not bolts:
            return 0
        base = submitted if submitted is not None else topology.queries_routed
        return sum(
            1
            for offset in range(upcoming_queries)
            if bolts[(base + offset) % len(bolts)].worker_id == victim
        )

    def _apply_handicaps(self, wall: float, handicaps: Dict[int, List]) -> float:
        """Fold active stall/slow penalties into one batch's wall clock."""
        for worker_id in list(handicaps):
            kind, remaining, factor = handicaps[worker_id]
            if kind == "stall":
                wall += self._stall_seconds
            else:
                wall *= factor
            remaining -= 1
            if remaining <= 0:
                del handicaps[worker_id]
            else:
                handicaps[worker_id][1] = remaining
        return wall

    # ------------------------------------------------------------------
    # Scored execution: chaos run vs fault-free oracle
    # ------------------------------------------------------------------

    def execute(
        self, workload: ChaosWorkload, plan: FaultPlan
    ) -> ChaosReport:
        """Run the oracle, run the chaos replay, and score them."""
        oracle = self.run(workload, plan=None, executor="serial", _oracle=True)
        chaos = self.run(workload, plan=plan)
        expected = workload.total_queries
        dropped = expected - len(chaos.signatures)
        wrong = sum(
            1
            for ours, reference in zip(chaos.signatures, oracle.signatures)
            if ours != reference
        )
        recoveries = self._score_recoveries(chaos)
        stats = chaos.elasticity
        return ChaosReport(
            total_queries=expected,
            wrong_answers=wrong,
            dropped_queries=max(dropped, 0) + stats.dropped_queries,
            retried_queries=stats.retried_queries,
            workers_joined=stats.workers_joined,
            workers_lost=stats.workers_lost,
            workers_retired=stats.workers_retired,
            join_transfer_units=stats.join_transfer_units,
            subgraphs_recovered=stats.subgraphs_recovered,
            events=list(chaos.events),
            recoveries=recoveries,
            oracle=oracle,
            chaos=chaos,
        )

    def _score_recoveries(self, chaos: ChaosRunResult) -> List[RecoverySample]:
        """Score time-to-recover for every applied fault event.

        Baseline qps is the median over the clean batches before the
        first fault (falling back to the overall median when a plan
        starts faulting immediately)."""
        applied = [event for event in chaos.events if event.applied]
        if not applied or not chaos.samples:
            return []
        qps = [sample.qps for sample in chaos.samples]
        first_fault = min(event.batch_index for event in applied)
        clean = qps[:first_fault]
        baseline = statistics.median(clean if clean else qps)
        threshold = self._recovery_fraction * baseline
        recoveries = []
        for event in applied:
            index = event.batch_index
            recovered_at = None
            for probe in range(index + 1, len(qps)):
                if qps[probe] >= threshold:
                    recovered_at = probe
                    break
            window_end = recovered_at if recovered_at is not None else len(qps)
            dip = min(qps[index:window_end] or [qps[index]])
            seconds = sum(
                sample.wall_seconds for sample in chaos.samples[index:window_end]
            )
            recoveries.append(
                RecoverySample(
                    kind=event.kind,
                    batch_index=index,
                    worker_id=event.worker_id,
                    recovered=recovered_at is not None,
                    recovery_batches=(
                        recovered_at - index if recovered_at is not None else -1
                    ),
                    recovery_seconds=seconds,
                    qps_baseline=baseline,
                    qps_dip=dip,
                    qps_recovered=(
                        qps[recovered_at] if recovered_at is not None else qps[-1]
                    ),
                )
            )
        return recoveries

"""Budget-aware retry policy: capped exponential backoff, seeded jitter.

Retries are the front door's second line of defence (after replica
failover) and its biggest self-inflicted risk: synchronized retries from
many clients turn one hiccup into a retry storm.  The policy here applies
the standard mitigations, deterministically:

* **capped exponential backoff** — delay grows ``base * 2^attempt`` up to
  ``max_backoff``, so a persistent outage converges to a bounded poll rate
  instead of a thundering stampede;
* **seeded jitter** — each delay is multiplied by a factor drawn from
  ``random.Random(f"retry:{seed}:{key}:{attempt}")``, de-synchronising
  clients that failed together while keeping every run of the test suite
  and the load generator bit-reproducible (Python's builtin ``hash`` is
  process-salted, hence the explicit string-keyed RNG);
* **server hints win** — a ``Retry-After`` from a 429/503 response floors
  the computed delay: the server knows its backlog better than any client
  curve;
* **budget awareness** — a retry that could not complete within the
  request's remaining deadline budget is not attempted at all
  (:meth:`RetryPolicy.next_delay` returns ``None``).  Retrying past the
  deadline burns server capacity answering a caller who already gave up —
  the precise waste deadline budgets exist to eliminate.
"""

from __future__ import annotations

import random
from typing import Optional

from .deadline import Deadline

__all__ = ["RetryPolicy"]


class RetryPolicy:
    """Deterministic, deadline-respecting retry schedule.

    Parameters
    ----------
    max_attempts:
        Total tries including the first (``3`` = one try + two retries).
    base_backoff / max_backoff:
        Exponential curve: attempt ``n`` (0-based) backs off
        ``min(base * 2^n, max_backoff)`` seconds before jitter.
    jitter:
        Half-width of the jitter band: the delay is scaled by a factor
        uniform in ``[1 - jitter, 1 + jitter]``.  ``0`` disables jitter.
    seed:
        Root of the deterministic jitter stream.  Two policies with the
        same seed produce identical schedules for identical keys.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_backoff: float = 0.01,
        max_backoff: float = 0.5,
        jitter: float = 0.25,
        seed: int = 0,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if base_backoff <= 0 or max_backoff < base_backoff:
            raise ValueError("need 0 < base_backoff <= max_backoff")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.max_attempts = max_attempts
        self.base_backoff = base_backoff
        self.max_backoff = max_backoff
        self.jitter = jitter
        self.seed = seed

    def backoff_seconds(self, attempt: int, key: object = "") -> float:
        """Jittered backoff before retry ``attempt`` (0-based) of ``key``."""
        raw = min(self.base_backoff * (2.0 ** attempt), self.max_backoff)
        if self.jitter == 0.0:
            return raw
        rng = random.Random(f"retry:{self.seed}:{key}:{attempt}")
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))

    def next_delay(
        self,
        attempt: int,
        key: object = "",
        retry_after: float = 0.0,
        deadline: Optional[Deadline] = None,
        now: Optional[float] = None,
    ) -> Optional[float]:
        """Delay before retry ``attempt``, or ``None`` to give up.

        ``None`` means either the attempt budget is exhausted or the
        remaining deadline budget cannot cover the delay itself (let alone
        the retried request) — the caller should surface the last error.
        ``retry_after`` (a server hint, seconds) floors the computed
        backoff.
        """
        if attempt >= self.max_attempts - 1:
            return None
        delay = max(self.backoff_seconds(attempt, key), max(0.0, retry_after))
        if deadline is not None and deadline.remaining(now) <= delay:
            return None
        return delay

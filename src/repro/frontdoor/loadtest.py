"""Load generation against the front door: closed loop, open loop, knee.

Two canonical load shapes, because they answer different questions:

* **closed loop** — N workers, each issuing its next query only after the
  previous answer returns.  Offered load adapts to service speed, so this
  measures *capacity*: the throughput the system sustains at a given
  concurrency.  Sweeping N upward and watching p99 finds the *saturation
  knee* — the largest concurrency whose p99 still meets the SLO, and the
  qps achieved there (:func:`find_knee`, the headline of
  ``BENCH_frontdoor.json``).
* **open loop** — requests fire on a fixed schedule whether or not earlier
  ones returned, the way real traffic arrives.  Past the knee this is the
  shape that exposes queue collapse: latency grows without bound while a
  closed loop would quietly self-throttle.  Used by the overload tests and
  available from the CLI.

Workers use :class:`~repro.frontdoor.client.FrontDoorClient` (one per
thread), so retries/backoff/deadline discipline are part of the measured
loop — the availability number is what a well-behaved client experiences,
not what a raw socket would see.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..obs.metrics import percentile
from .client import FrontDoorClient
from .retry import RetryPolicy

__all__ = ["LoadtestResult", "run_closed_loop", "run_open_loop", "find_knee"]

QuerySpec = Tuple[int, int, int]  # (source, target, k)


@dataclass(frozen=True)
class LoadtestResult:
    """Aggregate outcome of one load run at one operating point."""

    mode: str
    concurrency: int
    total: int
    ok: int
    degraded: int
    unavailable: int
    qps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    elapsed_seconds: float
    retries: int
    offered_qps: Optional[float] = None
    statuses: dict = field(default_factory=dict)

    @property
    def availability(self) -> float:
        """Fraction of requests answered (fresh or degraded)."""
        return (self.ok + self.degraded) / self.total if self.total else 0.0

    def as_row(self) -> dict:
        """Flat summary used by report tables and the bench JSON."""
        return {
            "mode": self.mode,
            "concurrency": self.concurrency,
            "total": self.total,
            "ok": self.ok,
            "degraded": self.degraded,
            "unavailable": self.unavailable,
            "availability": round(self.availability, 4),
            "qps": round(self.qps, 1),
            "p50_ms": round(self.p50_ms, 3),
            "p95_ms": round(self.p95_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "retries": self.retries,
        }


def _aggregate(
    mode: str,
    concurrency: int,
    outcomes: Sequence[Tuple[int, float, bool]],
    elapsed: float,
    retries: int,
    offered_qps: Optional[float] = None,
) -> LoadtestResult:
    """Fold raw ``(status, latency, degraded)`` samples into one result."""
    statuses: dict = {}
    ok = degraded = 0
    answered_latencies_ms: List[float] = []
    for status, latency, was_degraded in outcomes:
        statuses[status] = statuses.get(status, 0) + 1
        if status == 200:
            if was_degraded:
                degraded += 1
            else:
                ok += 1
            answered_latencies_ms.append(latency * 1e3)
    answered_latencies_ms.sort()
    total = len(outcomes)
    return LoadtestResult(
        mode=mode,
        concurrency=concurrency,
        total=total,
        ok=ok,
        degraded=degraded,
        unavailable=total - ok - degraded,
        qps=(ok + degraded) / elapsed if elapsed > 0 else 0.0,
        p50_ms=percentile(answered_latencies_ms, 50.0),
        p95_ms=percentile(answered_latencies_ms, 95.0),
        p99_ms=percentile(answered_latencies_ms, 99.0),
        elapsed_seconds=elapsed,
        retries=retries,
        offered_qps=offered_qps,
        statuses=statuses,
    )


def run_closed_loop(
    url: str,
    queries: Sequence[QuerySpec],
    concurrency: int = 4,
    budget_ms: float = 1_000.0,
    retry_seed: int = 0,
) -> LoadtestResult:
    """Issue ``queries`` from ``concurrency`` synchronous workers.

    Queries are consumed from one shared cursor, so the split across
    workers adapts to per-request latency (a worker stuck on a slow
    replica takes fewer).  Each worker owns one keep-alive client with a
    deterministic per-worker retry seed.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be at least 1")
    cursor_lock = threading.Lock()
    cursor = [0]
    outcomes: List[Tuple[int, float, bool]] = []
    outcome_lock = threading.Lock()
    retries = [0]

    def worker(worker_index: int) -> None:
        client = FrontDoorClient.for_url(
            url,
            retry_policy=RetryPolicy(seed=retry_seed * 1_000 + worker_index),
            default_budget_ms=budget_ms,
        )
        local: List[Tuple[int, float, bool]] = []
        try:
            while True:
                with cursor_lock:
                    index = cursor[0]
                    if index >= len(queries):
                        break
                    cursor[0] = index + 1
                source, target, k = queries[index]
                result = client.query(source, target, k, budget_ms=budget_ms)
                local.append((result.status, result.latency_seconds, result.degraded))
        finally:
            with outcome_lock:
                outcomes.extend(local)
                retries[0] += client.retries
            client.close()

    threads = [
        threading.Thread(target=worker, args=(index,), daemon=True)
        for index in range(concurrency)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return _aggregate("closed", concurrency, outcomes, elapsed, retries[0])


def run_open_loop(
    url: str,
    queries: Sequence[QuerySpec],
    offered_qps: float,
    budget_ms: float = 1_000.0,
    retry_seed: int = 0,
) -> LoadtestResult:
    """Fire ``queries`` on a fixed ``offered_qps`` schedule (one thread each).

    The schedule does not wait for responses — this is the arrival process
    that overwhelms a saturated service instead of politely adapting, which
    is exactly what the shedding/degradation paths need to be tested under.
    """
    if offered_qps <= 0:
        raise ValueError("offered_qps must be positive")
    interval = 1.0 / offered_qps
    outcomes: List[Tuple[int, float, bool]] = []
    outcome_lock = threading.Lock()
    retries = [0]

    def fire(index: int, spec: QuerySpec) -> None:
        client = FrontDoorClient.for_url(
            url,
            retry_policy=RetryPolicy(seed=retry_seed * 1_000 + index),
            default_budget_ms=budget_ms,
        )
        try:
            source, target, k = spec
            result = client.query(source, target, k, budget_ms=budget_ms)
            with outcome_lock:
                outcomes.append(
                    (result.status, result.latency_seconds, result.degraded)
                )
                retries[0] += client.retries
        finally:
            client.close()

    threads: List[threading.Thread] = []
    started = time.perf_counter()
    for index, spec in enumerate(queries):
        target_time = started + index * interval
        delay = target_time - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        thread = threading.Thread(target=fire, args=(index, spec), daemon=True)
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return _aggregate(
        "open", len(threads), outcomes, elapsed, retries[0], offered_qps=offered_qps
    )


def find_knee(
    url: str,
    queries: Sequence[QuerySpec],
    slo_ms: float,
    budget_ms: float = 1_000.0,
    concurrencies: Sequence[int] = (1, 2, 4, 8, 16),
    retry_seed: int = 0,
) -> Tuple[Optional[LoadtestResult], List[LoadtestResult]]:
    """Sweep closed-loop concurrency upward until p99 violates the SLO.

    Returns ``(knee, all_results)`` where ``knee`` is the highest-qps
    result whose p99 met ``slo_ms`` (``None`` if even concurrency 1
    missed it).  The sweep stops at the first violation — beyond the knee
    every higher concurrency only queues harder.
    """
    results: List[LoadtestResult] = []
    knee: Optional[LoadtestResult] = None
    for concurrency in concurrencies:
        result = run_closed_loop(
            url, queries, concurrency=concurrency, budget_ms=budget_ms,
            retry_seed=retry_seed,
        )
        results.append(result)
        if result.p99_ms <= slo_ms and result.availability == 1.0:
            if knee is None or result.qps > knee.qps:
                knee = result
        else:
            break
    return knee, results

"""Service replicas: independent `KSPService` instances behind the front door.

Each replica is a full serving stack — its own graph copy, engine, result
cache and admission pipeline — so replicas share *nothing* and a fault in
one (killed process, stalled batch) cannot corrupt another.  Replica
copies are made by pickling the seed graph/index (the same mechanism the
process executor uses to ship resident state), which guarantees every
replica starts from an identical network; maintenance keeps them identical
by applying the *same* pregenerated update rounds to all replicas at
quiesced boundaries (see :class:`~repro.frontdoor.server.FrontDoorServer`).

Fault injection mirrors the PR-9 chaos vocabulary, but at replica
granularity — this is the failure *domain* the front door routes around:

* ``kill``    — the replica refuses all work immediately
  (:class:`~repro.frontdoor.errors.ReplicaUnavailableError`, the
  connection-refused classification);
* ``revive``  — a killed replica rejoins (the ``join`` analogue);
* ``stall``   — the next N batches block for ``stall_seconds`` before
  computing, long enough to blow typical deadline budgets (the timeout
  classification);
* ``slow``    — the next N batches take ``factor``× their usual time
  (a degraded-but-alive replica; requests still succeed, slower).
"""

from __future__ import annotations

import pickle
import time
from typing import List, Optional, Sequence

from ..core.dtlp import DTLP, DTLPConfig
from ..distributed.engine import KSPDGEngine
from ..graph.graph import DynamicGraph, WeightUpdate
from ..service.server import KSPService, ServedQuery
from ..workloads.queries import KSPQuery
from ..workloads.runner import FindKSPEngine, YenEngine
from .errors import ReplicaUnavailableError

__all__ = ["ServiceReplica", "build_replicas", "REPLICA_ENGINES"]

#: Engine choices accepted by :func:`build_replicas`.
REPLICA_ENGINES = ("yen", "findksp", "kspdg")


class ServiceReplica:
    """One serving replica plus its fault-injection switchboard.

    Thread model: :meth:`submit` is called from the front door's event
    loop; :meth:`serve_batch` runs on the replica's dedicated worker
    thread.  Both funnel into the thread-safe request pipeline; the fault
    flags are plain attributes written by the (single-threaded) chaos
    driver and read racily by design — a kill taking effect one batch late
    is indistinguishable from a kill scheduled one batch later.
    """

    def __init__(
        self,
        replica_id: int,
        service: KSPService,
        stall_seconds: float = 0.08,
    ) -> None:
        self.replica_id = replica_id
        self.service = service
        self.stall_seconds = stall_seconds
        self.alive = True
        self._stall_batches = 0
        self._slow_batches = 0
        self._slow_factor = 1.0
        #: Fault bookkeeping for reports.
        self.kills = 0
        self.batches_served = 0

    # ------------------------------------------------------------------
    # fault injection (chaos vocabulary)
    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Refuse all subsequent work until :meth:`revive`."""
        if self.alive:
            self.kills += 1
        self.alive = False

    def revive(self) -> None:
        """Rejoin: accept work again (the ``join`` analogue)."""
        self.alive = True

    def stall(self, batches: int = 1) -> None:
        """Block the next ``batches`` serve calls for ``stall_seconds`` each."""
        self._stall_batches += max(0, batches)

    def slow(self, batches: int = 1, factor: float = 2.0) -> None:
        """Make the next ``batches`` serve calls ``factor``× slower."""
        self._slow_batches += max(0, batches)
        self._slow_factor = max(1.0, factor)

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    def healthy(self) -> bool:
        """Injected liveness AND the engine backend's own health signal."""
        if not self.alive:
            return False
        engine_healthy = getattr(self.service.engine, "healthy", None)
        return engine_healthy() if engine_healthy is not None else True

    # ------------------------------------------------------------------
    # serving (called by the front door)
    # ------------------------------------------------------------------
    def submit(self, query: KSPQuery, deadline: Optional[float] = None) -> bool:
        """Admit one query, or refuse immediately when killed/unhealthy."""
        if not self.healthy():
            raise ReplicaUnavailableError(
                f"replica {self.replica_id} is unavailable"
            )
        return self.service.submit(query, deadline=deadline)

    def serve_batch(self) -> List[ServedQuery]:
        """Process one micro-batch on the replica's worker thread.

        Applies pending stall/slow handicaps first — a stalled replica
        burns wall clock *before* computing, exactly like a wedged worker,
        so in-flight callers time out rather than error.
        """
        if not self.alive:
            raise ReplicaUnavailableError(
                f"replica {self.replica_id} is unavailable"
            )
        if self._stall_batches > 0:
            self._stall_batches -= 1
            time.sleep(self.stall_seconds)
        if self._slow_batches > 0:
            self._slow_batches -= 1
            # A slowdown scales the whole batch: sleep the extra time the
            # handicap adds on top of the EWMA-estimated batch cost.
            estimated = self.service.pipeline.estimated_batch_seconds
            time.sleep(estimated * (self._slow_factor - 1.0))
        served = self.service.process_batch()
        self.batches_served += 1
        return served

    def apply_maintenance(self, updates: Sequence[WeightUpdate]) -> None:
        """Apply one update round (called only at quiesced boundaries)."""
        self.service.maintenance_step(list(updates))

    def close(self) -> None:
        """Release the replica's service and engine (idempotent)."""
        if not self.service.closed:
            self.service.close()


def _copy_via_pickle(obj):
    """Deep copy through pickle — the exact state-shipping path replicas
    would cross in a real multi-process deployment, so anything that cannot
    replicate fails loudly here instead of in production."""
    return pickle.loads(pickle.dumps(obj))


def build_replicas(
    graph: DynamicGraph,
    num_replicas: int = 2,
    engine: str = "yen",
    kernel: str = "snapshot",
    executor: Optional[str] = None,
    workers: int = 2,
    z: int = 48,
    xi: int = 3,
    queue_capacity: int = 256,
    max_batch_size: int = 8,
    cache_capacity: int = 4096,
    stall_seconds: float = 0.08,
) -> List[ServiceReplica]:
    """Build ``num_replicas`` independent serving stacks from one seed graph.

    Every replica gets its own pickled copy of ``graph`` (and, for the
    ``kspdg`` engine, of the DTLP index built once over the seed graph), an
    engine on the requested kernel/executor, and a private
    :class:`KSPService`.  The caller — normally the front door server —
    owns the returned replicas and must close them.
    """
    if num_replicas < 1:
        raise ValueError("num_replicas must be at least 1")
    if engine not in REPLICA_ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected {REPLICA_ENGINES}")
    seed_dtlp: Optional[DTLP] = None
    if engine == "kspdg":
        seed_dtlp = DTLP(graph, DTLPConfig(z=z, xi=xi)).build()
    replicas: List[ServiceReplica] = []
    for replica_id in range(num_replicas):
        if engine == "kspdg":
            # Graph and index must stay mutually consistent, so they are
            # pickled together and land as one connected pair.
            replica_graph, replica_dtlp = _copy_via_pickle((graph, seed_dtlp))
            replica_engine = KSPDGEngine.local(
                replica_dtlp,
                num_workers=workers,
                kernel=kernel,
                executor=executor,
            )
        else:
            replica_graph = _copy_via_pickle(graph)
            replica_dtlp = None
            engine_cls = YenEngine if engine == "yen" else FindKSPEngine
            replica_engine = engine_cls(
                replica_graph,
                kernel=kernel,
                executor=executor,
                executor_workers=workers,
            )
        service = KSPService(
            replica_graph,
            replica_engine,
            owns_engine=True,
            dtlp=replica_dtlp,
            enable_cache=True,
            cache_capacity=cache_capacity,
            queue_capacity=queue_capacity,
            max_batch_size=max_batch_size,
        )
        replicas.append(
            ServiceReplica(replica_id, service, stall_seconds=stall_seconds)
        )
    return replicas

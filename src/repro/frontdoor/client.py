"""Blocking HTTP client for the front door, with the full retry discipline.

This is the reference *well-behaved client*: the load generator, the chaos
driver and the example script all use it, so the behaviours the server is
designed around — deadline budgets shrinking across retries, ``Retry-After``
respected, no retries past the deadline — are exercised by every caller in
the repository.  Stdlib only (``http.client``); one client per thread
(connections are not shared across threads).
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .deadline import DEFAULT_BUDGET_MS, Deadline
from .retry import RetryPolicy

__all__ = ["ClientResult", "FrontDoorClient"]


@dataclass(frozen=True)
class ClientResult:
    """Final outcome of one logical query, across all its attempts."""

    status: int
    payload: dict = field(default_factory=dict)
    attempts: int = 1
    latency_seconds: float = 0.0
    #: True when the answer came from the server's stale cache.
    degraded: bool = False

    @property
    def ok(self) -> bool:
        """Whether the caller got an answer (fresh or degraded)."""
        return self.status == 200

    @property
    def paths(self) -> List[dict]:
        """The answer's path list (empty on failure)."""
        return self.payload.get("paths", [])


class FrontDoorClient:
    """One keep-alive connection to a front door plus a retry policy."""

    def __init__(
        self,
        host: str,
        port: int,
        retry_policy: Optional[RetryPolicy] = None,
        default_budget_ms: float = DEFAULT_BUDGET_MS,
    ) -> None:
        self._host = host
        self._port = port
        self.retry_policy = retry_policy or RetryPolicy()
        self.default_budget_ms = default_budget_ms
        self._connection: Optional[http.client.HTTPConnection] = None
        #: Lifetime counters, for report lines.
        self.retries = 0
        self.degraded_answers = 0

    @classmethod
    def for_url(cls, url: str, **kwargs) -> "FrontDoorClient":
        """Build a client from a ``http://host:port`` base URL."""
        stripped = url.split("//", 1)[-1].rstrip("/")
        host, _, port = stripped.partition(":")
        return cls(host, int(port or 80), **kwargs)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[dict], headers: dict,
        timeout: float,
    ) -> Tuple[int, dict, dict]:
        """One HTTP exchange; raises ``OSError`` on transport failure."""
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self._host, self._port, timeout=timeout
            )
        connection = self._connection
        connection.timeout = max(1e-3, timeout)
        try:
            connection.request(
                method,
                path,
                body=json.dumps(body) if body is not None else None,
                headers={"Content-Type": "application/json", **headers},
            )
            response = connection.getresponse()
            raw = response.read()
        except (OSError, http.client.HTTPException):
            # Connection is poisoned (half-read response, reset socket);
            # drop it so the next attempt dials fresh.
            self.close()
            raise
        response_headers = {
            name.lower(): value for name, value in response.getheaders()
        }
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError:
            payload = {"raw": raw.decode("utf-8", "replace")}
        if not isinstance(payload, dict):
            payload = {"value": payload}
        return response.status, payload, response_headers

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def query(
        self,
        source: int,
        target: int,
        k: int = 2,
        budget_ms: Optional[float] = None,
    ) -> ClientResult:
        """Ask for k shortest paths, retrying within the deadline budget.

        Retryable outcomes: 429/503 (backoff floored by the server's
        ``Retry-After``) and transport errors (reset/refused — the server
        thread may be mid-restart).  Non-retryable: 200, 400, 404, 504 — a
        spent deadline only gets *more* spent.  The deadline budget covers
        the whole logical query including every backoff sleep; when the
        policy cannot fit another attempt inside the budget, the last
        failure is returned as-is.
        """
        deadline = Deadline.from_budget_ms(
            budget_ms if budget_ms is not None else self.default_budget_ms
        )
        key = (source, target, k)
        started = time.perf_counter()
        attempt = 0
        while True:
            remaining = deadline.remaining()
            if remaining <= 0:
                return ClientResult(
                    status=504,
                    payload={"error": "client-side deadline exhausted"},
                    attempts=attempt + 1,
                    latency_seconds=time.perf_counter() - started,
                )
            try:
                status, payload, response_headers = self._request(
                    "POST",
                    "/query",
                    {"source": source, "target": target, "k": k},
                    # Advertise only the remaining budget: the server must
                    # not plan with time this client has already spent.
                    {"X-Deadline-Ms": f"{remaining * 1e3:.1f}"},
                    timeout=remaining,
                )
                retry_after = float(response_headers.get("retry-after", 0.0))
            except (OSError, http.client.HTTPException):
                status, payload, retry_after = 503, {"error": "transport"}, 0.0
            if status == 200 or status not in (429, 503):
                degraded = bool(payload.get("degraded", False))
                if degraded:
                    self.degraded_answers += 1
                return ClientResult(
                    status=status,
                    payload=payload,
                    attempts=attempt + 1,
                    latency_seconds=time.perf_counter() - started,
                    degraded=degraded,
                )
            delay = self.retry_policy.next_delay(
                attempt, key=key, retry_after=retry_after, deadline=deadline
            )
            if delay is None:
                return ClientResult(
                    status=status,
                    payload=payload,
                    attempts=attempt + 1,
                    latency_seconds=time.perf_counter() - started,
                )
            time.sleep(delay)
            self.retries += 1
            attempt += 1

    def maintenance(self, updates) -> dict:
        """POST one update round: ``updates`` is ``[(u, v, new_weight), ...]``."""
        status, payload, _headers = self._request(
            "POST",
            "/maintenance",
            {"updates": [[u, v, w] for u, v, w in updates]},
            {},
            timeout=60.0,
        )
        if status != 200:
            raise RuntimeError(f"maintenance failed ({status}): {payload}")
        return payload

    def health(self) -> dict:
        """GET the ``/healthz`` document."""
        status, payload, _headers = self._request("GET", "/healthz", None, {}, 10.0)
        if status != 200:
            raise RuntimeError(f"healthz failed ({status}): {payload}")
        return payload

    def close(self) -> None:
        """Drop the persistent connection (idempotent)."""
        if self._connection is not None:
            try:
                self._connection.close()
            except (OSError, socket.error):  # pragma: no cover - best effort
                pass
            self._connection = None

    def __enter__(self) -> "FrontDoorClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

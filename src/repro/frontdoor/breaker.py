"""Per-replica circuit breakers: fail fast instead of failing slowly.

A replica that is down fails requests *slowly* — each caller burns its
deadline budget discovering the same dead socket.  The circuit breaker
converts that repeated slow failure into a fast local decision:

* **closed** — traffic flows; consecutive failures are counted by kind.
  A *refused* failure (connection refused / replica killed) trips the
  breaker after ``refused_threshold`` in a row; *timeouts* and generic
  errors need ``failure_threshold`` — a refused connection is definitive
  evidence while a timeout may just be one slow batch;
* **open** — all traffic is rejected locally (the router skips the
  replica) for an *open window* that doubles on every consecutive trip up
  to ``max_open_seconds``.  The doubling is the flapping defence: a
  replica that recovers briefly and dies again is probed less and less
  often instead of re-absorbing full traffic on every blip;
* **half-open** — after the window, up to ``half_open_probes`` concurrent
  requests are admitted as *probes*; everything beyond that is still
  rejected (the probe-storm defence — without the cap, every queued caller
  rushes the convalescent replica the instant the window expires).  A
  probe success closes the breaker and resets the trip streak; a probe
  failure re-opens it with the next-longer window.

The clock is injectable so the state machine is unit-testable without
sleeping; production uses ``time.monotonic``.  Instances are used from the
front door's single event-loop thread and are deliberately lock-free.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN", "FAILURE_KINDS"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Failure classifications accepted by :meth:`CircuitBreaker.record_failure`.
FAILURE_KINDS = ("timeout", "refused", "error")


class CircuitBreaker:
    """Closed → open → half-open breaker guarding one replica."""

    def __init__(
        self,
        failure_threshold: int = 5,
        refused_threshold: int = 2,
        open_seconds: float = 0.25,
        max_open_seconds: float = 4.0,
        half_open_probes: int = 1,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if failure_threshold < 1 or refused_threshold < 1:
            raise ValueError("failure thresholds must be at least 1")
        if open_seconds <= 0 or max_open_seconds < open_seconds:
            raise ValueError("need 0 < open_seconds <= max_open_seconds")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be at least 1")
        self.failure_threshold = failure_threshold
        self.refused_threshold = refused_threshold
        self.open_seconds = open_seconds
        self.max_open_seconds = max_open_seconds
        self.half_open_probes = half_open_probes
        self._clock = clock if clock is not None else time.monotonic
        self._state = CLOSED
        self._consecutive: Dict[str, int] = {kind: 0 for kind in FAILURE_KINDS}
        self._consecutive_total = 0
        self._open_until = 0.0
        #: Consecutive trips without an intervening success; drives the
        #: exponential open-window backoff for flapping replicas.
        self._trip_streak = 0
        self._probes_in_flight = 0
        #: Lifetime trip count (telemetry; never reset).
        self.trips = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, advancing open → half-open when the window lapsed."""
        if self._state == OPEN and self._clock() >= self._open_until:
            self._state = HALF_OPEN
            self._probes_in_flight = 0
        return self._state

    @property
    def consecutive_failures(self) -> int:
        """Failures since the last success (any kind)."""
        return self._consecutive_total

    def current_open_window(self) -> float:
        """Open window the *next* trip would impose (doubling, capped)."""
        window = self.open_seconds * (2.0 ** max(0, self._trip_streak))
        return min(window, self.max_open_seconds)

    def retry_after(self) -> float:
        """Seconds until an open breaker will admit a probe (0 otherwise)."""
        if self.state != OPEN:
            return 0.0
        return max(0.0, self._open_until - self._clock())

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether a request may be sent to the replica right now.

        In half-open state an allowed request *is* a probe and occupies one
        of the bounded probe slots until its outcome is recorded — callers
        must follow every ``allow() == True`` with exactly one
        ``record_success`` or ``record_failure``.
        """
        state = self.state
        if state == CLOSED:
            return True
        if state == OPEN:
            return False
        if self._probes_in_flight >= self.half_open_probes:
            return False
        self._probes_in_flight += 1
        return True

    # ------------------------------------------------------------------
    # outcomes
    # ------------------------------------------------------------------
    def record_success(self) -> None:
        """A request (or half-open probe) completed: heal the breaker."""
        if self._state == HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
        self._state = CLOSED
        self._trip_streak = 0
        self._consecutive_total = 0
        for kind in self._consecutive:
            self._consecutive[kind] = 0

    def record_failure(self, kind: str = "error") -> None:
        """A request failed; trip when the kind's threshold is reached."""
        if kind not in self._consecutive:
            raise ValueError(f"unknown failure kind {kind!r}; expected {FAILURE_KINDS}")
        state = self.state
        if state == HALF_OPEN:
            # The probe failed: the replica is still sick; back off longer.
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            self._trip()
            return
        self._consecutive[kind] += 1
        self._consecutive_total += 1
        threshold = (
            self.refused_threshold if kind == "refused" else self.failure_threshold
        )
        if self._consecutive[kind] >= threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = OPEN
        self._open_until = self._clock() + self.current_open_window()
        self._trip_streak += 1
        self.trips += 1
        self._consecutive_total = 0
        for kind in self._consecutive:
            self._consecutive[kind] = 0

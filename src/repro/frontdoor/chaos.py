"""Chaos-through-the-front-door: seeded faults, HTTP traffic, oracle scoring.

PR 9's chaos harness injects faults *inside* one serving stack and replays
the exact trace against an oracle.  This driver raises the failure domain
one level: whole replicas are killed, stalled or slowed according to the
same :class:`~repro.chaos.plan.FaultPlan` vocabulary while real HTTP
clients (retries, deadlines and all) push traffic through the front door.
The properties scored are the resilient-serving contract:

* **zero wrong answers** — every 200 is checked against a fault-free
  oracle graph that receives the identical maintenance rounds.  Fresh
  answers must match Yen's distances at the *current* graph version;
  degraded answers must byte-match an answer that was itself validated
  when it was fresh (the stale cache can only replay history, never
  invent).
* **availability floor** — the fraction of requests answered (fresh or
  degraded) stays above a floor even while replicas die mid-run.
* **breaker recovery** — breakers trip during the faulted windows and are
  no longer open after the cooldown windows of clean traffic.

Time is windowed, not batched: window *w* of client traffic corresponds to
batch index *w* of the fault plan.  Faults and maintenance are applied on
the quiet boundary between windows, so every fresh answer inside a window
is computed at one well-defined graph version and the oracle comparison is
exact — determinism by construction, same trick as the PR-9 harness.
"""

from __future__ import annotations

import pickle
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..algorithms.yen import yen_k_shortest_paths
from ..chaos.plan import FaultPlan
from ..dynamics.traffic import TrafficModel
from ..graph.graph import DynamicGraph, WeightUpdate
from ..obs.metrics import percentile
from ..workloads.queries import QueryGenerator
from .breaker import OPEN
from .client import FrontDoorClient
from .replicas import build_replicas
from .retry import RetryPolicy
from .server import start_front_door

__all__ = ["FrontDoorChaosResult", "run_chaos_frontdoor"]

QueryKey = Tuple[int, int, int]

#: Relative tolerance when comparing path distances against the oracle.
_DISTANCE_RTOL = 1e-6


@dataclass
class FrontDoorChaosResult:
    """Scored outcome of one chaos-through-the-front-door run."""

    windows: int
    cooldown_windows: int
    total: int
    ok: int
    degraded: int
    unavailable: int
    cooldown_unavailable: int
    wrong_answers: List[dict] = field(default_factory=list)
    status_counts: Dict[int, int] = field(default_factory=dict)
    breaker_trips: int = 0
    final_breaker_states: Dict[int, str] = field(default_factory=dict)
    kills: int = 0
    maintenance_rounds: int = 0
    retries: int = 0
    #: Wall-clock seconds spent pushing traffic (window boundaries — fault
    #: injection, maintenance, breaker waits — excluded).
    traffic_seconds: float = 0.0
    #: End-to-end latencies (ms) of every answered (200) request.
    latencies_ms: List[float] = field(default_factory=list)

    @property
    def qps(self) -> float:
        """Answered requests per second of traffic time, faults included."""
        answered = self.ok + self.degraded
        return answered / self.traffic_seconds if self.traffic_seconds else 0.0

    @property
    def p99_ms(self) -> float:
        """p99 end-to-end latency of answered requests (ms)."""
        return percentile(self.latencies_ms, 99.0) if self.latencies_ms else 0.0

    @property
    def availability(self) -> float:
        """Fraction of requests answered, fresh or degraded."""
        return (self.ok + self.degraded) / self.total if self.total else 0.0

    @property
    def correct(self) -> bool:
        """True when every answered request matched the oracle."""
        return not self.wrong_answers

    @property
    def breakers_recovered(self) -> bool:
        """True when no breaker is still open after the cooldown."""
        return all(state != OPEN for state in self.final_breaker_states.values())

    def as_dict(self) -> dict:
        """JSON-friendly summary (wrong answers truncated to the first 5)."""
        return {
            "windows": self.windows,
            "cooldown_windows": self.cooldown_windows,
            "total": self.total,
            "ok": self.ok,
            "degraded": self.degraded,
            "unavailable": self.unavailable,
            "cooldown_unavailable": self.cooldown_unavailable,
            "availability": round(self.availability, 4),
            "wrong_answers": self.wrong_answers[:5],
            "wrong_answer_count": len(self.wrong_answers),
            "status_counts": {str(s): n for s, n in sorted(self.status_counts.items())},
            "breaker_trips": self.breaker_trips,
            "final_breaker_states": {
                str(rid): state
                for rid, state in sorted(self.final_breaker_states.items())
            },
            "breakers_recovered": self.breakers_recovered,
            "kills": self.kills,
            "maintenance_rounds": self.maintenance_rounds,
            "retries": self.retries,
            "qps": round(self.qps, 1),
            "p99_ms": round(self.p99_ms, 3),
        }


class _Oracle:
    """Fault-free twin graph plus a memo of validated answers.

    The oracle graph starts as a pickled copy of the seed graph (the same
    copy mechanism the replicas use) and receives the identical maintenance
    rounds, so ``oracle.graph.version`` always equals the replicas' version
    at window boundaries.  ``validated`` remembers the distances of every
    fresh answer that passed, keyed by ``(query key, version)`` — the only
    legitimate provenance for a degraded answer.
    """

    def __init__(self, graph: DynamicGraph) -> None:
        self.graph = pickle.loads(pickle.dumps(graph))
        self._expected: Dict[Tuple[QueryKey, int], Tuple[float, ...]] = {}
        self.validated: Dict[Tuple[QueryKey, int], Tuple[float, ...]] = {}

    def expected_distances(self, key: QueryKey) -> Tuple[float, ...]:
        """Yen distances for ``key`` at the oracle's current version."""
        memo_key = (key, self.graph.version)
        cached = self._expected.get(memo_key)
        if cached is None:
            source, target, k = key
            paths = yen_k_shortest_paths(self.graph, source, target, k)
            cached = tuple(path.distance for path in paths)
            self._expected[memo_key] = cached
        return cached

    def apply_round(self, updates: Sequence[WeightUpdate]) -> int:
        self.graph.apply_updates(list(updates))
        return self.graph.version


def _distances_match(
    got: Sequence[float], expected: Sequence[float]
) -> bool:
    if len(got) != len(expected):
        return False
    return all(
        abs(g - e) <= _DISTANCE_RTOL * max(1.0, abs(e))
        for g, e in zip(got, expected)
    )


def _check_answer(
    oracle: _Oracle, key: QueryKey, payload: dict
) -> Optional[dict]:
    """Score one 200 payload; return a wrong-answer record or ``None``."""
    distances = tuple(path.get("distance") for path in payload.get("paths", []))
    if payload.get("degraded"):
        version = int(payload.get("stale_graph_version", -1))
        expected = oracle.validated.get((key, version))
        if expected is None:
            return {
                "key": list(key),
                "reason": "degraded answer with unvalidated provenance",
                "stale_graph_version": version,
            }
        if not _distances_match(distances, expected):
            return {
                "key": list(key),
                "reason": "degraded answer differs from its validated original",
                "got": list(distances),
                "expected": list(expected),
            }
        return None
    version = int(payload.get("graph_version", -1))
    if version != oracle.graph.version:
        return {
            "key": list(key),
            "reason": "fresh answer at stale graph version",
            "got_version": version,
            "oracle_version": oracle.graph.version,
        }
    expected = oracle.expected_distances(key)
    if not _distances_match(distances, expected):
        return {
            "key": list(key),
            "reason": "fresh answer distances differ from oracle",
            "got": list(distances),
            "expected": list(expected),
        }
    oracle.validated[(key, version)] = expected
    return None


def _run_window(
    url: str,
    specs: Sequence[QueryKey],
    concurrency: int,
    budget_ms: float,
    retry_seed: int,
) -> List[Tuple[QueryKey, object]]:
    """Push one window of traffic; return ``(key, ClientResult)`` pairs."""
    cursor_lock = threading.Lock()
    cursor = [0]
    outcomes: List[Tuple[QueryKey, object]] = []
    outcome_lock = threading.Lock()

    def worker(worker_index: int) -> None:
        client = FrontDoorClient.for_url(
            url,
            retry_policy=RetryPolicy(seed=retry_seed * 1_000 + worker_index),
            default_budget_ms=budget_ms,
        )
        try:
            while True:
                with cursor_lock:
                    index = cursor[0]
                    if index >= len(specs):
                        break
                    cursor[0] = index + 1
                source, target, k = specs[index]
                result = client.query(source, target, k, budget_ms=budget_ms)
                with outcome_lock:
                    outcomes.append(((source, target, k), result))
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, args=(index,), daemon=True)
        for index in range(min(concurrency, max(1, len(specs))))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return outcomes


def run_chaos_frontdoor(
    graph: DynamicGraph,
    plan: FaultPlan,
    windows: Optional[int] = None,
    num_replicas: int = 3,
    engine: str = "yen",
    kernel: str = "snapshot",
    executor: Optional[str] = None,
    workers: int = 2,
    window_requests: int = 8,
    concurrency: int = 4,
    budget_ms: float = 800.0,
    k: int = 2,
    update_every: int = 2,
    cooldown_windows: int = 3,
    degraded_mode: bool = True,
    query_seed: int = 0,
    update_seed: int = 0,
    stall_seconds: float = 0.08,
) -> FrontDoorChaosResult:
    """Run ``plan`` against a fresh front door and score the contract.

    Window ``w`` of client traffic maps to batch index ``w`` of ``plan``;
    faults fire on the boundary *before* their window so the window runs
    entirely under the faulted topology.  ``kill`` victims auto-revive
    after ``duration_batches`` windows (``join`` revives the
    longest-dead replica early).  Maintenance rounds — identical for
    replicas and oracle — land every ``update_every`` windows.  After the
    plan, ``cooldown_windows`` of clean traffic (all replicas revived)
    give breakers room to probe and close again.
    """
    if windows is None:
        last_event = max((event.batch_index for event in plan.events), default=-1)
        windows = last_event + 2
    windows = max(1, windows)
    oracle = _Oracle(graph)
    total_windows = windows + cooldown_windows
    generator = QueryGenerator(oracle.graph, seed=query_seed)
    all_queries = generator.generate(total_windows * window_requests, k=k)
    specs: List[QueryKey] = [query.key for query in all_queries]
    traffic = TrafficModel(oracle.graph, seed=update_seed)
    update_rounds = traffic.pregenerate(max(1, total_windows // max(1, update_every)))
    events_by_window = plan.by_batch()

    replicas = build_replicas(
        graph,
        num_replicas=num_replicas,
        engine=engine,
        kernel=kernel,
        executor=executor,
        workers=workers,
        stall_seconds=stall_seconds,
    )
    result = FrontDoorChaosResult(
        windows=windows,
        cooldown_windows=cooldown_windows,
        total=0,
        ok=0,
        degraded=0,
        unavailable=0,
        cooldown_unavailable=0,
    )
    # window index -> replica ids due to auto-revive at that boundary
    pending_revives: Dict[int, List[int]] = {}
    next_round = 0

    with start_front_door(replicas, degraded_mode=degraded_mode) as handle:
        server = handle.server
        by_id = server.replicas

        def alive_ids() -> List[int]:
            return sorted(rid for rid, rep in by_id.items() if rep.alive)

        def dead_ids() -> List[int]:
            return sorted(rid for rid, rep in by_id.items() if not rep.alive)

        for window in range(total_windows):
            in_cooldown = window >= windows
            # -- boundary: revives due this window -----------------------
            for replica_id in pending_revives.pop(window, []):
                handle.run_on_loop(by_id[replica_id].revive)
            if in_cooldown and window == windows:
                # Cooldown starts with a fully healed fleet.
                for replica_id in dead_ids():
                    handle.run_on_loop(by_id[replica_id].revive)
                # Let every open breaker's window elapse so clean traffic
                # can probe half-open breakers shut again.
                wait = handle.run_on_loop(
                    lambda: max(
                        (b.retry_after() for b in server.breakers.values()),
                        default=0.0,
                    )
                )
                time.sleep(min(wait, 2.0))
            # -- boundary: maintenance round -----------------------------
            if (
                update_every > 0
                and window > 0
                and window % update_every == 0
                and next_round < len(update_rounds)
            ):
                round_updates = update_rounds[next_round]
                next_round += 1
                served_version = handle.apply_maintenance(round_updates)
                oracle_version = oracle.apply_round(round_updates)
                result.maintenance_rounds += 1
                if served_version != oracle_version:
                    result.wrong_answers.append(
                        {
                            "reason": "maintenance version drift",
                            "served_version": served_version,
                            "oracle_version": oracle_version,
                        }
                    )
            # -- boundary: fault events for this window ------------------
            if not in_cooldown:
                for ordinal, event in enumerate(events_by_window.get(window, ())):
                    rng = plan.victim_rng(window, ordinal)
                    if event.kind == "kill":
                        candidates = alive_ids()
                        if len(candidates) <= 1:
                            continue  # never kill the last replica standing
                        victim = candidates[rng.randrange(len(candidates))]
                        handle.run_on_loop(by_id[victim].kill)
                        result.kills += 1
                        revive_at = window + max(1, event.duration_batches)
                        pending_revives.setdefault(revive_at, []).append(victim)
                    elif event.kind == "join":
                        dead = dead_ids()
                        if dead:
                            handle.run_on_loop(by_id[dead[0]].revive)
                    elif event.kind == "stall":
                        candidates = alive_ids()
                        victim = candidates[rng.randrange(len(candidates))]
                        handle.run_on_loop(
                            by_id[victim].stall, max(1, event.duration_batches)
                        )
                    elif event.kind == "slow":
                        candidates = alive_ids()
                        victim = candidates[rng.randrange(len(candidates))]
                        handle.run_on_loop(
                            by_id[victim].slow,
                            max(1, event.duration_batches),
                            event.factor,
                        )
            # -- the window's traffic ------------------------------------
            window_specs = specs[
                window * window_requests : (window + 1) * window_requests
            ]
            window_started = time.perf_counter()
            outcomes = _run_window(
                handle.url,
                window_specs,
                concurrency,
                budget_ms,
                retry_seed=window,
            )
            result.traffic_seconds += time.perf_counter() - window_started
            for key, client_result in outcomes:
                result.total += 1
                status = client_result.status
                result.status_counts[status] = (
                    result.status_counts.get(status, 0) + 1
                )
                if status != 200:
                    result.unavailable += 1
                    if in_cooldown:
                        result.cooldown_unavailable += 1
                    continue
                if client_result.degraded:
                    result.degraded += 1
                else:
                    result.ok += 1
                result.latencies_ms.append(client_result.latency_seconds * 1e3)
                wrong = _check_answer(oracle, key, client_result.payload)
                if wrong is not None:
                    wrong["window"] = window
                    result.wrong_answers.append(wrong)

        result.breaker_trips = server.breaker_trips_total()
        result.final_breaker_states = handle.run_on_loop(
            lambda: {
                rid: server.breakers[rid].state for rid in sorted(server.breakers)
            }
        )
        result.retries = sum(
            replica.service.report().retried_submissions
            for replica in by_id.values()
            if not replica.service.closed
        )
    return result

"""Consistent query routing: rendezvous hashing over the replica set.

Queries are routed by their ``(source, target, k)`` key so that repeats of
the same OD pair land on the same replica — that is what makes the
per-replica result caches and request coalescing effective (a round-robin
front door would spread a hot key over every replica and multiply the
compute).  The scheme is *rendezvous* (highest-random-weight) hashing:
each replica's score for a key is an independent keyed hash, the replica
with the highest score wins, and crucially the *ordering* of the remaining
replicas is the failover chain — when the primary is breaker-open or down,
the key moves to its second-choice replica and stays there consistently,
disturbing no other key's placement (the minimal-disruption property that
makes breakers and kill/join churn cheap).

Hashes are ``blake2b`` over an explicit byte string: Python's builtin
``hash`` is process-salted and would re-shard the world on every restart.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence, Tuple

__all__ = ["rendezvous_order", "Router"]

QueryKey = Tuple[int, int, int]


def _score(key: QueryKey, replica_id: int) -> int:
    digest = hashlib.blake2b(
        f"route:{key[0]}:{key[1]}:{key[2]}|replica:{replica_id}".encode("ascii"),
        digest_size=8,
    ).digest()
    return int.from_bytes(digest, "big")


def rendezvous_order(key: QueryKey, replica_ids: Sequence[int]) -> List[int]:
    """Replica ids ordered by descending rendezvous score for ``key``.

    Index 0 is the consistent primary; the rest is the failover chain.
    Deterministic across processes and runs (keyed blake2b, not ``hash``).
    """
    return sorted(
        replica_ids, key=lambda replica_id: _score(key, replica_id), reverse=True
    )


class Router:
    """Stateless routing view over a (fixed-id) replica set."""

    def __init__(self, replica_ids: Sequence[int]) -> None:
        if not replica_ids:
            raise ValueError("router needs at least one replica id")
        self._replica_ids = list(replica_ids)

    @property
    def replica_ids(self) -> List[int]:
        """All known replica ids (routable or not)."""
        return list(self._replica_ids)

    def order(self, key: QueryKey) -> List[int]:
        """Primary-first failover chain for one query key."""
        return rendezvous_order(key, self._replica_ids)

"""Deadline budgets: the time contract a request carries end to end.

A *deadline budget* is the total time a caller is willing to wait for an
answer, fixed once at the edge and threaded — as an absolute instant, not
a duration — through every layer the request crosses: HTTP parsing,
routing, breaker checks, replica admission, micro-batching and the engine.
Passing the absolute instant is the whole point: each layer computes its
*remaining* budget locally, so time spent queueing in layer N is
automatically unavailable to layer N+1, and a retry never gets a fresh
budget by accident (the tail-at-scale failure mode this module exists to
prevent).

Instants are ``time.perf_counter`` values, matching the clock the service
pipeline already uses for enqueue timestamps.  The HTTP layer serialises
budgets as milliseconds (``X-Deadline-Ms``) and converts to an absolute
:class:`Deadline` exactly once, on ingress.
"""

from __future__ import annotations

import time
from typing import Optional

__all__ = ["Deadline", "DEFAULT_BUDGET_MS"]

#: Budget assumed when a request names none — generous enough for a cold
#: engine batch, small enough that a stalled replica is abandoned quickly.
DEFAULT_BUDGET_MS = 2_000.0


class Deadline:
    """An absolute wall-clock deadline with remaining-budget arithmetic."""

    __slots__ = ("at", "budget_seconds")

    def __init__(self, at: float, budget_seconds: float = 0.0) -> None:
        self.at = float(at)
        #: The original budget, kept for reporting (``Retry-After`` hints
        #: and telemetry); the contract itself is only ``at``.
        self.budget_seconds = float(budget_seconds)

    @classmethod
    def from_budget_ms(
        cls, budget_ms: Optional[float], now: Optional[float] = None
    ) -> "Deadline":
        """Fix a deadline ``budget_ms`` from now (default budget if None)."""
        if budget_ms is None:
            budget_ms = DEFAULT_BUDGET_MS
        if budget_ms <= 0:
            raise ValueError(f"deadline budget must be positive, got {budget_ms}")
        start = time.perf_counter() if now is None else now
        seconds = budget_ms / 1e3
        return cls(start + seconds, budget_seconds=seconds)

    def remaining(self, now: Optional[float] = None) -> float:
        """Seconds of budget left (<= 0 when expired)."""
        timestamp = time.perf_counter() if now is None else now
        return self.at - timestamp

    def expired(self, now: Optional[float] = None) -> bool:
        """Whether the budget is spent."""
        return self.remaining(now) <= 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Deadline(at={self.at:.6f}, budget={self.budget_seconds:.3f}s)"

"""Resilient serving tier in front of N :class:`~repro.service.server.KSPService` replicas.

The front door is the failure-isolation layer the paper's serving story
needs once there is more than one replica: an asyncio HTTP/JSON server
(stdlib only) that owns

* **routing** — rendezvous hashing gives every query key a stable primary
  replica plus a deterministic failover chain (:mod:`.router`);
* **deadline budgets** — each request carries an absolute deadline fixed at
  ingress and threaded through admission, batching and the engine; work
  that cannot finish in time is shed early, not computed late
  (:mod:`.deadline`);
* **retries** — capped exponential backoff with deterministic seeded
  jitter, floored by the server's ``Retry-After`` and never extending past
  the deadline (:mod:`.retry`);
* **circuit breakers** — per-replica closed/open/half-open state machines
  with probe-based recovery, so a dead replica costs one classification,
  not one timeout per request (:mod:`.breaker`);
* **graceful degradation** — a last-known-answer cache serving
  version-stale results flagged ``degraded: true`` when every live route
  is exhausted; strict mode disables it (:mod:`.stale`);
* **measurement** — closed/open-loop load generation with knee search
  (:mod:`.loadtest`) and a chaos driver that scores zero-wrong-answers,
  availability floors and breaker recovery through real HTTP
  (:mod:`.chaos`).
"""

from .breaker import CLOSED, FAILURE_KINDS, HALF_OPEN, OPEN, CircuitBreaker
from .chaos import FrontDoorChaosResult, run_chaos_frontdoor
from .client import ClientResult, FrontDoorClient
from .deadline import DEFAULT_BUDGET_MS, Deadline
from .errors import (
    FrontDoorError,
    NoReplicaAvailableError,
    ReplicaUnavailableError,
)
from .loadtest import LoadtestResult, find_knee, run_closed_loop, run_open_loop
from .replicas import REPLICA_ENGINES, ServiceReplica, build_replicas
from .retry import RetryPolicy
from .router import Router, rendezvous_order
from .server import FrontDoorHandle, FrontDoorServer, start_front_door
from .stale import StaleCache

__all__ = [
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "FAILURE_KINDS",
    "CircuitBreaker",
    "FrontDoorChaosResult",
    "run_chaos_frontdoor",
    "ClientResult",
    "FrontDoorClient",
    "DEFAULT_BUDGET_MS",
    "Deadline",
    "FrontDoorError",
    "NoReplicaAvailableError",
    "ReplicaUnavailableError",
    "LoadtestResult",
    "find_knee",
    "run_closed_loop",
    "run_open_loop",
    "REPLICA_ENGINES",
    "ServiceReplica",
    "build_replicas",
    "RetryPolicy",
    "Router",
    "rendezvous_order",
    "FrontDoorHandle",
    "FrontDoorServer",
    "start_front_door",
    "StaleCache",
]

"""Last-known-answer cache backing graceful degradation.

When every route to a live replica is exhausted — breakers open, retries
spent, deadline nearly gone — the front door can still do better than an
error: serve the *last answer it ever produced* for this query key,
clearly flagged ``degraded: true`` and stamped with the graph version the
answer was computed at.  For a navigation workload a seconds-stale route
is almost always more useful than a 503; callers that disagree run the
front door in strict mode, which never consults this cache.

This cache is deliberately different from the service-layer
:class:`~repro.service.cache.ResultCache`:

* it is **never invalidated** — staleness is its entire purpose; the
  stored ``graph_version`` makes the staleness inspectable instead of
  silent;
* it stores the serialisable response payload, not live ``Path`` objects,
  because it is written and read on the HTTP layer's event loop;
* it is bounded LRU, sized to the working set of hot keys — eviction only
  narrows degraded coverage, never correctness.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

__all__ = ["StaleCache"]

QueryKey = Tuple[int, int, int]


class StaleCache:
    """Bounded LRU of last-known response payloads, keyed by query key."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._capacity = capacity
        self._entries: "OrderedDict[QueryKey, Tuple[dict, int]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def capacity(self) -> int:
        """Maximum number of retained keys."""
        return self._capacity

    def put(self, key: QueryKey, payload: dict, graph_version: int) -> None:
        """Remember the latest good payload for ``key`` (LRU insert)."""
        if key in self._entries:
            self._entries.pop(key)
        elif len(self._entries) >= self._capacity:
            self._entries.popitem(last=False)
        self._entries[key] = (payload, graph_version)

    def get(self, key: QueryKey) -> Optional[Tuple[dict, int]]:
        """Last ``(payload, graph_version)`` for ``key``, or ``None``."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

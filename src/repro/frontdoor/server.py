"""The resilient HTTP front door over a set of service replicas.

This is the tier that turns the in-process :class:`KSPService` into a
network service built robustness-first — every request crosses, in order:

1. **deadline** — the budget is fixed once at ingress (``X-Deadline-Ms``
   header, default :data:`~repro.frontdoor.deadline.DEFAULT_BUDGET_MS`)
   and threaded as an absolute instant through every later step;
2. **route** — rendezvous hashing picks a consistent primary replica and
   an ordered failover chain for the query key (:mod:`.router`);
3. **breaker** — per-replica circuit breakers skip replicas known to be
   down, at local-decision cost instead of a burned timeout (:mod:`.breaker`);
4. **admission** — the replica's bounded pipeline admits, coalesces or
   sheds the query, deadline-aware (:mod:`repro.service.pipeline`);
5. **batch** — a per-replica worker coalesces admitted queries for a short
   window and drains micro-batches on a dedicated thread, resolving one
   future per waiting request.

Failures cascade *sideways* before they cascade *up*: a refused or
timed-out replica triggers failover to the next replica in the chain
(budget permitting), and only when every route is exhausted does the
request fail — or, with degraded mode on, get answered from the
last-known-answer cache flagged ``degraded: true`` (:mod:`.stale`).

Transport is deliberately minimal HTTP/1.1 on ``asyncio.start_server`` —
stdlib only, keep-alive supported, JSON bodies — because the interesting
machinery is the resilience layer, not the protocol framing.  The server
runs inside a dedicated thread with its own event loop
(:class:`FrontDoorHandle`), so tests and the CLI drive it from ordinary
synchronous code.

Consistency: maintenance (weight updates) applies only at *quiesced*
boundaries — the server drains every replica, applies the same update
round to all of them, then reopens admission.  Every answer therefore
carries an unambiguous ``graph_version``, which is what lets the chaos
harness validate answers (including version-stale degraded ones) against
an oracle.
"""

from __future__ import annotations

import asyncio
import json
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..graph.graph import WeightUpdate
from ..obs.metrics import MetricsRegistry
from ..service.errors import (
    DeadlineExceededError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from ..service.server import ServedQuery
from ..workloads.queries import KSPQuery
from .breaker import CircuitBreaker
from .deadline import DEFAULT_BUDGET_MS, Deadline
from .errors import NoReplicaAvailableError, ReplicaUnavailableError
from .replicas import ServiceReplica
from .router import Router
from .stale import StaleCache

__all__ = ["FrontDoorServer", "FrontDoorHandle", "start_front_door"]

QueryKey = Tuple[int, int, int]

_MAX_BODY_BYTES = 1 << 20


class _ReplicaWorker:
    """Async adapter around one replica: waiter futures + batch drainer.

    Lives entirely on the front door's event loop except for the batch
    compute itself, which runs on a dedicated single worker thread (one
    per replica — a stalled replica blocks only its own thread).  Waiters
    are keyed by query key in submit order, matching the order the service
    pipeline fans answers out to coalesced queries.
    """

    def __init__(
        self,
        replica: ServiceReplica,
        loop: asyncio.AbstractEventLoop,
        batch_window: float,
    ) -> None:
        self.replica = replica
        self._loop = loop
        self._batch_window = batch_window
        self._waiters: Dict[QueryKey, Deque[asyncio.Future]] = {}
        self._wake = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"replica-{replica.replica_id}"
        )
        self._task: Optional[asyncio.Task] = None
        self._stopping = False
        self._draining = False

    def start(self) -> None:
        self._task = self._loop.create_task(self._run())

    # -- called from request handlers (loop thread) ---------------------
    def submit(self, query: KSPQuery, deadline: Deadline) -> asyncio.Future:
        """Admit one query and return the future its answer will resolve.

        Raises the replica's admission errors (overload, unavailable)
        synchronously — admission is the cheap, local part.
        """
        self.replica.submit(query, deadline=deadline.at)
        future: asyncio.Future = self._loop.create_future()
        self._waiters.setdefault(query.key, deque()).append(future)
        self._wake.set()
        return future

    @property
    def idle(self) -> bool:
        """No queued work, no waiters, no batch in flight."""
        return (
            not self._waiters
            and self.replica.service.pipeline.empty
            and not self._draining
        )

    # -- batch loop -----------------------------------------------------
    async def _run(self) -> None:
        while not self._stopping:
            await self._wake.wait()
            self._wake.clear()
            if self._stopping:
                break
            # Coalescing window: let near-simultaneous requests pile into
            # the same micro-batch before draining.
            await asyncio.sleep(self._batch_window)
            while not self.replica.service.pipeline.empty:
                self._draining = True
                try:
                    served = await self._loop.run_in_executor(
                        self._pool, self.replica.serve_batch
                    )
                except (ReplicaUnavailableError, ServiceClosedError) as exc:
                    self._fail_all_waiters(exc)
                    break
                except Exception as exc:  # engine/backend failure
                    self._fail_all_waiters(exc)
                    break
                finally:
                    self._draining = False
                self._resolve(served)

    def _resolve(self, served: Sequence[ServedQuery]) -> None:
        for answer in served:
            queue = self._waiters.get(answer.query.key)
            if not queue:
                continue
            future = queue.popleft()
            if not queue:
                del self._waiters[answer.query.key]
            if future.done():  # caller timed out and was cancelled
                continue
            if answer.deadline_expired:
                future.set_exception(DeadlineExceededError(answer.query.key))
            else:
                future.set_result(answer)

    def _fail_all_waiters(self, exc: BaseException) -> None:
        """Fail every waiter (replica died mid-flight) and drop its queue.

        The pipeline's pending slots are discarded too: their waiters are
        being failed right here, so computing those answers after a revive
        would be work nobody collects.
        """
        waiters = self._waiters
        self._waiters = {}
        for queue in waiters.values():
            for future in queue:
                if not future.done():
                    future.set_exception(exc)
        pipeline = self.replica.service.pipeline
        while not pipeline.empty:
            pipeline.next_batch()
        pipeline.drain_expired()

    async def quiesce(self) -> None:
        """Wait until the replica has no in-flight or queued work."""
        while not self.idle:
            await asyncio.sleep(self._batch_window)

    async def stop(self) -> None:
        self._stopping = True
        self._wake.set()
        if self._task is not None:
            await self._task
        self._fail_all_waiters(ServiceClosedError("front door shutting down"))
        self._pool.shutdown(wait=True)


class FrontDoorServer:
    """Asyncio HTTP/JSON front door over N service replicas.

    Endpoints
    ---------
    ``POST /query``
        Body ``{"source": s, "target": t, "k": k}``; optional
        ``X-Deadline-Ms`` header.  200 with the answer (``degraded: true``
        when served from the stale cache), 400 on a bad request, 429/503
        (+ ``Retry-After``) on shed/unavailable, 504 on a spent deadline.
    ``POST /maintenance``
        Body ``{"updates": [[u, v, new_weight], ...]}``; quiesces every
        replica, applies the round to all of them, returns the new
        ``graph_version``.
    ``GET /healthz``
        Replica/breaker states and counters, as JSON.
    ``GET /metrics``
        Prometheus-style text exposition of the front-door registry.

    Construction wires, per replica: a circuit breaker, an async worker
    and its batch thread.  ``degraded_mode=False`` is strict mode: the
    stale cache is never consulted and exhausted routes surface as errors.
    """

    def __init__(
        self,
        replicas: Sequence[ServiceReplica],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        degraded_mode: bool = True,
        default_budget_ms: float = DEFAULT_BUDGET_MS,
        batch_window: float = 0.004,
        stale_capacity: int = 4096,
        breakers: Optional[Dict[int, CircuitBreaker]] = None,
    ) -> None:
        if not replicas:
            raise ValueError("front door needs at least one replica")
        self.replicas: Dict[int, ServiceReplica] = {
            replica.replica_id: replica for replica in replicas
        }
        if len(self.replicas) != len(replicas):
            raise ValueError("replica ids must be unique")
        self.router = Router(sorted(self.replicas))
        self.breakers: Dict[int, CircuitBreaker] = breakers or {
            replica_id: CircuitBreaker() for replica_id in self.replicas
        }
        self.degraded_mode = degraded_mode
        self.default_budget_ms = default_budget_ms
        self.stale = StaleCache(stale_capacity)
        self._host = host
        self._port = port
        self._batch_window = batch_window
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self.workers: Dict[int, _ReplicaWorker] = {}
        self._connections: Dict[asyncio.Task, asyncio.StreamWriter] = {}
        self._next_query_id = 0
        self._maintenance_gate = asyncio.Event()
        self._maintenance_gate.set()
        self.counters: Dict[str, int] = {
            "requests_total": 0,
            "served_ok": 0,
            "served_degraded": 0,
            "shed_overload": 0,
            "shed_deadline_infeasible": 0,
            "deadline_exceeded": 0,
            "no_replica_available": 0,
            "failovers": 0,
            "bad_requests": 0,
            "maintenance_rounds": 0,
        }

    # ------------------------------------------------------------------
    # lifecycle (event-loop thread)
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        for replica_id, replica in self.replicas.items():
            worker = _ReplicaWorker(replica, self._loop, self._batch_window)
            worker.start()
            self.workers[replica_id] = worker
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        self._port = self._server.sockets[0].getsockname()[1]

    @property
    def port(self) -> int:
        """Bound port (resolved after :meth:`start` when 0 was requested)."""
        return self._port

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self._host}:{self._port}"

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Unblock idle keep-alive connections and wait for their handler
        # tasks, so no transport outlives the event loop.
        for writer in list(self._connections.values()):
            writer.close()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        for worker in self.workers.values():
            await worker.stop()
        for replica in self.replicas.values():
            replica.close()

    # ------------------------------------------------------------------
    # HTTP framing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._connections[task] = writer
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break
                except asyncio.LimitOverrunError:
                    await self._respond(writer, 431, {"error": "headers too large"})
                    break
                request_line, headers = self._parse_head(head)
                if request_line is None:
                    await self._respond(writer, 400, {"error": "malformed request"})
                    break
                method, path = request_line
                length = int(headers.get("content-length", "0") or "0")
                if length > _MAX_BODY_BYTES:
                    await self._respond(writer, 413, {"error": "body too large"})
                    break
                body = await reader.readexactly(length) if length else b""
                status, payload, extra = await self._dispatch(
                    method, path, headers, body
                )
                keep_alive = headers.get("connection", "").lower() != "close"
                await self._respond(writer, status, payload, extra, keep_alive)
                if not keep_alive:
                    break
        finally:
            self._connections.pop(task, None)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    def _parse_head(head: bytes):
        try:
            lines = head.decode("latin-1").split("\r\n")
            method, path, _version = lines[0].split(" ", 2)
        except (UnicodeDecodeError, ValueError):
            return None, {}
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return (method.upper(), path), headers

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload,
        extra_headers: Optional[Dict[str, str]] = None,
        keep_alive: bool = True,
    ) -> None:
        reasons = {
            200: "OK", 400: "Bad Request", 404: "Not Found",
            413: "Payload Too Large", 429: "Too Many Requests",
            431: "Request Header Fields Too Large", 500: "Internal Server Error",
            503: "Service Unavailable", 504: "Gateway Timeout",
        }
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = "text/plain; charset=utf-8"
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        lines = [
            f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ):
        if method == "POST" and path == "/query":
            return await self._handle_query(headers, body)
        if method == "POST" and path == "/maintenance":
            return await self._handle_maintenance(body)
        if method == "GET" and path == "/healthz":
            return 200, self.health_snapshot(), None
        if method == "GET" and path == "/metrics":
            return 200, self.metrics_registry().render_prometheus(), None
        return 404, {"error": f"no route for {method} {path}"}, None

    # ------------------------------------------------------------------
    # /query
    # ------------------------------------------------------------------
    async def _handle_query(self, headers: Dict[str, str], body: bytes):
        self.counters["requests_total"] += 1
        try:
            request = json.loads(body.decode("utf-8"))
            source = int(request["source"])
            target = int(request["target"])
            k = int(request.get("k", 2))
            if k < 1:
                raise ValueError("k must be positive")
            budget_ms = headers.get("x-deadline-ms")
            deadline = Deadline.from_budget_ms(
                float(budget_ms) if budget_ms else self.default_budget_ms
            )
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            self.counters["bad_requests"] += 1
            return 400, {"error": f"bad request: {exc}"}, None
        topology = next(iter(self.replicas.values())).service.graph
        if not (topology.has_vertex(source) and topology.has_vertex(target)):
            self.counters["bad_requests"] += 1
            return 404, {"error": f"unknown vertex in ({source}, {target})"}, None
        await self._maintenance_gate.wait()
        query_id = self._next_query_id
        self._next_query_id += 1
        query = KSPQuery(query_id=query_id, source=source, target=target, k=k)
        key = query.key
        try:
            answer, replica_id, attempts = await self._answer(query, deadline)
        except ServiceOverloadedError as exc:
            degraded = self._try_degraded(key)
            if degraded is not None:
                return degraded
            status = 503 if exc.reason == "deadline" else 429
            counter = (
                "shed_deadline_infeasible"
                if exc.reason == "deadline"
                else "shed_overload"
            )
            self.counters[counter] += 1
            return (
                status,
                {"error": str(exc), "reason": exc.reason,
                 "retry_after": round(exc.retry_after, 4)},
                {"Retry-After": f"{exc.retry_after:.3f}"},
            )
        except DeadlineExceededError as exc:
            self.counters["deadline_exceeded"] += 1
            return 504, {"error": str(exc)}, None
        except NoReplicaAvailableError as exc:
            degraded = self._try_degraded(key)
            if degraded is not None:
                return degraded
            self.counters["no_replica_available"] += 1
            retry_after = self._min_breaker_retry_after()
            return (
                503,
                {"error": str(exc), "retry_after": round(retry_after, 4)},
                {"Retry-After": f"{retry_after:.3f}"},
            )
        except ServiceClosedError as exc:
            return 503, {"error": str(exc)}, None
        self.counters["served_ok"] += 1
        if attempts > 1:
            self.counters["failovers"] += attempts - 1
        core = {
            "source": source,
            "target": target,
            "k": k,
            "paths": [
                {"vertices": list(path.vertices), "distance": path.distance}
                for path in answer.paths
            ],
            "graph_version": answer.graph_version,
        }
        self.stale.put(key, core, answer.graph_version)
        payload = dict(core)
        payload.update(
            degraded=False,
            from_cache=answer.from_cache,
            replica=replica_id,
            attempts=attempts,
        )
        return 200, payload, None

    async def _answer(
        self, query: KSPQuery, deadline: Deadline
    ) -> Tuple[ServedQuery, int, int]:
        """Route/failover core: one answer or a typed exhaustion error."""
        key = query.key
        attempts = 0
        last_overload: Optional[ServiceOverloadedError] = None
        for replica_id in self.router.order(key):
            if deadline.expired():
                raise DeadlineExceededError(key)
            breaker = self.breakers[replica_id]
            if not breaker.allow():
                continue
            worker = self.workers[replica_id]
            attempts += 1
            try:
                future = worker.submit(query, deadline)
            except ServiceOverloadedError as exc:
                # The replica answered (with backpressure): it is alive.
                # Record the probe outcome as success so an overloaded but
                # healthy replica is not tripped into open.
                breaker.record_success()
                last_overload = exc
                continue
            except (ReplicaUnavailableError, ServiceClosedError):
                breaker.record_failure("refused")
                continue
            try:
                answer = await asyncio.wait_for(
                    future, timeout=max(1e-3, deadline.remaining())
                )
            except asyncio.TimeoutError:
                breaker.record_failure("timeout")
                continue
            except DeadlineExceededError:
                # Definitive reply from a live replica; don't punish it.
                breaker.record_success()
                raise
            except (ReplicaUnavailableError, ServiceClosedError):
                breaker.record_failure("refused")
                continue
            breaker.record_success()
            if attempts > 1:
                # Tell the serving replica its answer absorbed a failover
                # retry, so replica-level reports separate retries/sheds.
                self.replicas[replica_id].service.note_retry()
            return answer, replica_id, attempts
        if last_overload is not None:
            raise last_overload
        raise NoReplicaAvailableError(
            f"no replica available for key {key} "
            f"({len(self.replicas)} replicas, all down or breaker-open)"
        )

    def _try_degraded(self, key: QueryKey):
        """Serve the last-known answer when degradation is allowed."""
        if not self.degraded_mode:
            return None
        entry = self.stale.get(key)
        if entry is None:
            return None
        core, version = entry
        self.counters["served_degraded"] += 1
        payload = dict(core)
        payload.update(degraded=True, stale_graph_version=version)
        return 200, payload, None

    def _min_breaker_retry_after(self) -> float:
        waits = [breaker.retry_after() for breaker in self.breakers.values()]
        positive = [wait for wait in waits if wait > 0.0]
        return min(positive) if positive else 0.05

    # ------------------------------------------------------------------
    # /maintenance
    # ------------------------------------------------------------------
    async def _handle_maintenance(self, body: bytes):
        try:
            request = json.loads(body.decode("utf-8"))
            updates = [
                WeightUpdate(int(u), int(v), float(weight))
                for u, v, weight in request["updates"]
            ]
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            self.counters["bad_requests"] += 1
            return 400, {"error": f"bad maintenance request: {exc}"}, None
        version = await self._apply_maintenance(updates)
        return 200, {"applied": len(updates), "graph_version": version}, None

    async def _apply_maintenance(self, updates: List[WeightUpdate]) -> int:
        """Quiesce all replicas, apply one round everywhere, reopen.

        The gate closes admission first so the drain converges; every
        replica then applies the identical round, keeping graph versions
        aligned across the set — the invariant that makes ``graph_version``
        in responses meaningful for validation.
        """
        self._maintenance_gate.clear()
        try:
            for worker in self.workers.values():
                await worker.quiesce()
            loop = asyncio.get_running_loop()
            for replica_id, replica in self.replicas.items():
                if not replica.alive:
                    # A killed replica still receives maintenance: its
                    # graph must stay version-aligned for revival.  Apply
                    # directly (its worker thread is idle by quiesce).
                    replica.service.maintenance_step(list(updates))
                    continue
                await loop.run_in_executor(
                    self.workers[replica_id]._pool,
                    replica.apply_maintenance,
                    updates,
                )
            self.counters["maintenance_rounds"] += 1
        finally:
            self._maintenance_gate.set()
        return next(iter(self.replicas.values())).service.graph.version

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def breaker_trips_total(self) -> int:
        """Lifetime breaker trips summed over replicas."""
        return sum(breaker.trips for breaker in self.breakers.values())

    def health_snapshot(self) -> dict:
        """The ``/healthz`` document (also used directly by tests/CLI)."""
        replica_states = []
        for replica_id in sorted(self.replicas):
            replica = self.replicas[replica_id]
            breaker = self.breakers[replica_id]
            replica_states.append(
                {
                    "id": replica_id,
                    "alive": replica.alive,
                    "healthy": replica.healthy(),
                    "breaker": breaker.state,
                    "trips": breaker.trips,
                    "queue_depth": replica.service.queue_depth,
                    "batches_served": replica.batches_served,
                }
            )
        all_healthy = all(state["healthy"] for state in replica_states)
        return {
            "status": "ok" if all_healthy else "degraded",
            "degraded_mode": self.degraded_mode,
            "breaker_trips_total": self.breaker_trips_total(),
            "counters": dict(self.counters),
            "replicas": replica_states,
        }

    def metrics_registry(self) -> MetricsRegistry:
        """Front-door metrics: request counters + per-replica breaker state."""
        registry = MetricsRegistry()
        for name, value in self.counters.items():
            registry.counter(f"frontdoor_{name}").inc(value)
        registry.counter(
            "frontdoor_breaker_trips_total",
            help="circuit-breaker trips summed over replicas",
        ).inc(self.breaker_trips_total())
        state_codes = {"closed": 0, "open": 1, "half_open": 2}
        for replica_id in sorted(self.breakers):
            breaker = self.breakers[replica_id]
            registry.gauge(
                f"frontdoor_breaker_state{{replica=\"{replica_id}\"}}",
                help="0=closed 1=open 2=half_open",
            ).set(state_codes[breaker.state])
        registry.counter("frontdoor_stale_cache_hits_total").inc(self.stale.hits)
        registry.counter("frontdoor_stale_cache_misses_total").inc(self.stale.misses)
        return registry


class FrontDoorHandle:
    """Synchronous handle hosting a :class:`FrontDoorServer` in a thread.

    The server's event loop runs on a dedicated daemon thread; the handle
    exposes thread-safe entry points for the driver side (tests, CLI, load
    generator): the bound URL, maintenance application, arbitrary
    loop-thread calls for fault injection, and shutdown.
    """

    def __init__(self, server: FrontDoorServer) -> None:
        self.server = server
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="frontdoor-loop", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10.0)
        if not self._started.is_set():  # pragma: no cover - startup failure
            raise RuntimeError("front door event loop failed to start")

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.server.start())
        self._started.set()
        self._loop.run_forever()
        # Drain the shutdown coroutine scheduled by close().
        self._loop.run_until_complete(self.server.stop())
        self._loop.close()

    @property
    def url(self) -> str:
        """Base URL of the served front door."""
        return self.server.url

    def apply_maintenance(self, updates: Sequence[WeightUpdate]) -> int:
        """Apply one update round to every replica (quiesced); new version."""
        future = asyncio.run_coroutine_threadsafe(
            self.server._apply_maintenance(list(updates)), self._loop
        )
        return future.result(timeout=60.0)

    def run_on_loop(self, fn, *args):
        """Run ``fn(*args)`` on the event-loop thread and return its result.

        The fault-injection entry point: flipping replica/breaker state on
        the loop thread keeps the server's view race-free without locks.
        """
        done = threading.Event()
        box: List[object] = []

        def call() -> None:
            try:
                box.append(fn(*args))
            except BaseException as exc:  # noqa: BLE001 - relayed to caller
                box.append(exc)
            finally:
                done.set()

        self._loop.call_soon_threadsafe(call)
        if not done.wait(timeout=30.0):  # pragma: no cover - watchdog
            raise TimeoutError("loop-thread call timed out")
        result = box[0]
        if isinstance(result, BaseException):
            raise result
        return result

    def health(self) -> dict:
        """Thread-safe ``/healthz`` snapshot without an HTTP round trip."""
        return self.run_on_loop(self.server.health_snapshot)

    def close(self) -> None:
        """Stop the server, its workers and replicas; join the thread."""
        if not self._thread.is_alive():
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30.0)

    def __enter__(self) -> "FrontDoorHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def start_front_door(
    replicas: Sequence[ServiceReplica], **server_kwargs
) -> FrontDoorHandle:
    """Build and start a front door over ``replicas``; returns the handle.

    The handle owns the replicas from here on — :meth:`FrontDoorHandle.close`
    closes them along with the server.
    """
    return FrontDoorHandle(FrontDoorServer(replicas, **server_kwargs))

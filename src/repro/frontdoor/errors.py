"""Exceptions raised by the front-door serving tier."""

from __future__ import annotations

from ..graph.errors import ReproError

__all__ = [
    "FrontDoorError",
    "ReplicaUnavailableError",
    "NoReplicaAvailableError",
]


class FrontDoorError(ReproError):
    """Base class for errors raised by :mod:`repro.frontdoor`."""


class ReplicaUnavailableError(FrontDoorError):
    """A replica refused work because it is down (killed or dead backend).

    The connection-refused analogue of a real deployment: the failure is
    *immediate* and *definitive*, so breakers classify it more aggressively
    than a timeout (which may just be a slow batch).
    """


class NoReplicaAvailableError(FrontDoorError):
    """Every routable replica was down or breaker-open for this request."""

"""Dynamics: the traffic model that evolves edge weights over time."""

from .traffic import TrafficModel

__all__ = ["TrafficModel"]

"""Traffic evolution model for dynamic road networks.

The paper's datasets contain one static snapshot of travel times; to emulate
evolving traffic conditions the authors apply a well-established time-varying
travel-time model parameterised by

* ``alpha`` — the fraction of edges whose weight changes at each snapshot, and
* ``tau`` — the relative range of the variation (each changed weight moves by
  a factor drawn from ``[-tau, +tau]``).

:class:`TrafficModel` reproduces this behaviour.  Weights vary around the
edge's *initial* weight rather than drifting multiplicatively, which keeps
long simulations stable, and an optional *correlated* mode makes all changed
edges move in the same direction within a snapshot — Section 5.5 argues that
road networks behave this way (congestion builds up or dissipates globally),
and the number-of-iterations analysis relies on it.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Tuple

from ..graph.graph import DynamicGraph, WeightUpdate

__all__ = ["TrafficModel"]


class TrafficModel:
    """Generator of per-snapshot edge-weight updates.

    Parameters
    ----------
    graph:
        The dynamic graph whose weights evolve.
    alpha:
        Fraction of edges changing at each snapshot, in ``(0, 1]``.
    tau:
        Relative variation range, ``>= 0``.  A changed edge's new weight is
        ``w0 * (1 + delta)`` with ``delta`` drawn from ``[-tau, +tau]``
        (clamped so weights stay strictly positive).
    seed:
        Random seed for reproducibility.
    correlated:
        When ``True`` (the default) all edges changed in the same snapshot
        share the sign of their variation (all increase or all decrease).
        Section 5.5 of the paper argues that real road networks behave this
        way — congestion builds up or dissipates across the network with a
        similar trend — and the iteration analysis of KSP-DG relies on it.
        Set to ``False`` for adversarial, uncorrelated churn.
    direction:
        ``"both"`` (default) lets snapshots increase or decrease travel
        times; ``"increase"`` models congestion building on top of free-flow
        travel times (weights never drop below the initial value), and
        ``"decrease"`` the opposite.  The congestion-style ``"increase"``
        setting keeps the DTLP lower bounds in the tight regime §5.5 assumes
        and is what the parameter-sweep benchmarks use.
    minimum_factor:
        Lower clamp on ``1 + delta`` to keep weights positive.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        alpha: float = 0.35,
        tau: float = 0.30,
        seed: int = 42,
        correlated: bool = True,
        direction: str = "both",
        minimum_factor: float = 0.05,
    ) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if tau < 0:
            raise ValueError(f"tau must be non-negative, got {tau}")
        if direction not in ("both", "increase", "decrease"):
            raise ValueError(
                f"direction must be 'both', 'increase' or 'decrease', got {direction!r}"
            )
        self._graph = graph
        self.alpha = alpha
        self.tau = tau
        self.correlated = correlated
        self.direction = direction
        self._minimum_factor = minimum_factor
        self._rng = random.Random(seed)
        self._timestamp = 0
        self._edges: List[Tuple[int, int]] = [(u, v) for u, v, _ in graph.edges()]

    @property
    def timestamp(self) -> int:
        """Number of snapshots generated so far."""
        return self._timestamp

    def generate_updates(self) -> List[WeightUpdate]:
        """Generate (but do not apply) one snapshot's worth of weight updates.

        Pairs of opposite arcs in directed graphs are treated independently;
        callers who need the undirected behaviour of the paper's default
        setting should build an undirected graph, in which case each edge is
        naturally updated once.
        """
        self._timestamp += 1
        num_changes = max(1, int(len(self._edges) * self.alpha))
        chosen = self._rng.sample(self._edges, min(num_changes, len(self._edges)))
        if self.direction == "increase":
            sign: float = 1.0
        elif self.direction == "decrease":
            sign = -1.0
        elif self.correlated:
            sign = self._rng.choice((-1.0, 1.0))
        else:
            sign = 0.0  # sentinel: per-edge random direction
        updates: List[WeightUpdate] = []
        for u, v in chosen:
            base = self._graph.initial_weight(u, v)
            magnitude = self._rng.uniform(0.0, self.tau)
            direction = sign if sign != 0.0 else self._rng.choice((-1.0, 1.0))
            factor = max(self._minimum_factor, 1.0 + direction * magnitude)
            updates.append(
                WeightUpdate(u, v, round(base * factor, 6), timestamp=self._timestamp)
            )
        return updates

    def pregenerate(self, num_snapshots: int) -> List[List[WeightUpdate]]:
        """Generate ``num_snapshots`` rounds of updates without applying any.

        Because updated weights vary around each edge's *initial* weight
        (not its current weight), generation does not depend on the graph's
        evolving state: pre-generating a sequence of rounds and applying
        them later yields exactly the snapshots :meth:`advance` would have
        produced live.  The trace-replay driver of the serving layer relies
        on this to build reproducible mixed update/query traces up front.
        """
        return [self.generate_updates() for _ in range(num_snapshots)]

    def advance(self) -> List[WeightUpdate]:
        """Generate one snapshot of updates and apply them to the graph.

        Returns the applied updates so callers (benchmarks, index
        maintenance experiments) can measure downstream costs.
        """
        updates = self.generate_updates()
        self._graph.apply_updates(updates)
        return updates

    def stream(self, num_snapshots: int) -> Iterator[List[WeightUpdate]]:
        """Yield ``num_snapshots`` successive applied snapshots."""
        for _ in range(num_snapshots):
            yield self.advance()

"""Per-query span tracing with deterministic Chrome trace-event export.

The tracing pillar of :mod:`repro.obs`: a lightweight tracer threaded
through the full query lifecycle — service admission/queue wait →
micro-batch → topology batch → route → SubgraphBolt/QueryBolt work items →
DTLP memo hit/miss → kernel searches.

Design constraints, in order:

1. **Zero-ish cost when off.**  Instrumentation sites call :func:`span` /
   :func:`push_span`; with no trace active on the current thread these are
   one thread-local ``getattr`` and return a shared null context manager /
   ``None``.  No span objects, no argument dict, nothing allocated.
2. **Replay-deterministic output.**  Exported traces carry *no wall-clock
   values*: span identity derives from ``(seq, route_index)``, timestamps
   are logical (a deterministic DFS layout), and durations are logical
   work units (1 per span plus the span's deterministic kernel counters
   when profiling is on).  Two replays of the same trace — on *any*
   execution backend, given backend-independent per-query work — produce
   byte-identical JSON.  (Cross-backend byte-identity additionally
   requires per-query work to be backend-independent; the cross-round
   partial-path memo is per-process state, so it holds with ``pruning``
   off — see ``ARCHITECTURE.md``, "Observability".)
3. **Executor-transparent collection.**  Spans build per query on
   whichever thread/process runs it (the thread-local stack isolates
   concurrent queries); the finished tree travels back on the query
   result — pickled across the process boundary like any other result
   field — and the master stitches trees into the session in submission
   order.

The export target is the Chrome trace-event JSON format (the ``X``
complete-event flavour), loadable in Perfetto / ``chrome://tracing``;
:func:`render_tree` and ``repro trace`` provide a human-readable view.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Span",
    "TraceSession",
    "trace_active",
    "begin_trace",
    "end_trace",
    "span",
    "push_span",
    "pop_span",
    "mark",
    "add_span_args",
    "current_span",
    "render_tree",
    "trees_from_chrome",
]

from .profile import counters_delta, counters_snapshot

_local = threading.local()


class Span:
    """One node of a query's span tree: a name, args, and child spans."""

    __slots__ = ("name", "args", "children")

    def __init__(self, name: str, args: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.args: Dict[str, Any] = args if args is not None else {}
        self.children: List["Span"] = []

    def child(self, name: str, **args: Any) -> "Span":
        """Append and return a new child span."""
        node = Span(name, args)
        self.children.append(node)
        return node

    def walk(self) -> Iterable["Span"]:
        """Pre-order traversal over this span and every descendant."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __getstate__(self):
        return (self.name, self.args, self.children)

    def __setstate__(self, state) -> None:
        self.name, self.args, self.children = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, args={self.args!r}, children={len(self.children)})"


# ----------------------------------------------------------------------
# thread-local span stack
# ----------------------------------------------------------------------
# Stack frames are [span, kernel_snapshot_or_None]; a non-empty stack means
# a trace is active on this thread.


def trace_active() -> bool:
    """Whether a span tree is being built on the current thread."""
    return bool(getattr(_local, "stack", None))


def begin_trace(root: Span) -> Span:
    """Activate tracing on this thread with ``root`` as the open span."""
    _local.stack = [[root, None]]
    return root


def end_trace() -> Optional[Span]:
    """Deactivate tracing on this thread, returning the root span."""
    stack = getattr(_local, "stack", None)
    _local.stack = None
    return stack[0][0] if stack else None


def current_span() -> Optional[Span]:
    """The innermost open span, or ``None`` when tracing is off."""
    stack = getattr(_local, "stack", None)
    return stack[-1][0] if stack else None


def push_span(name: str, _kernel: bool = False, **args: Any) -> Optional[Span]:
    """Open a child span under the current one; ``None`` when tracing is off.

    Pass the returned token to :func:`pop_span` (a ``None`` token makes the
    pop a no-op, so call sites need no conditionals).  ``_kernel=True``
    snapshots the active kernel-profiling counters on entry and records
    their growth as span args on exit.
    """
    stack = getattr(_local, "stack", None)
    if not stack:
        return None
    node = Span(name, args)
    stack[-1][0].children.append(node)
    stack.append([node, counters_snapshot() if _kernel else None])
    return node


def pop_span(token: Optional[Span]) -> None:
    """Close the span opened by the matching :func:`push_span`."""
    if token is None:
        return
    stack = _local.stack
    node, snapshot = stack.pop()
    if snapshot is not None:
        node.args.update(counters_delta(snapshot))


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_CONTEXT = _NullSpanContext()


class _SpanContext:
    __slots__ = ("_name", "_kernel", "_args", "_token")

    def __init__(self, name: str, kernel: bool, args: Dict[str, Any]) -> None:
        self._name = name
        self._kernel = kernel
        self._args = args
        self._token: Optional[Span] = None

    def __enter__(self) -> Span:
        self._token = push_span(self._name, _kernel=self._kernel, **self._args)
        return self._token

    def __exit__(self, *exc_info: object) -> bool:
        pop_span(self._token)
        return False


def span(name: str, _kernel: bool = False, **args: Any):
    """Context manager opening a child span (shared no-op when tracing is off)."""
    if not trace_active():
        return _NULL_CONTEXT
    return _SpanContext(name, _kernel, args)


def mark(name: str, **args: Any) -> None:
    """Record a childless point-event span under the current span."""
    stack = getattr(_local, "stack", None)
    if stack:
        stack[-1][0].children.append(Span(name, args))


def add_span_args(**args: Any) -> None:
    """Attach args to the innermost open span (no-op when tracing is off)."""
    stack = getattr(_local, "stack", None)
    if stack:
        stack[-1][0].args.update(args)


# ----------------------------------------------------------------------
# session: collection and export
# ----------------------------------------------------------------------


class TraceSession:
    """Master-side collector of span trees for one traced run.

    Query trees are keyed by a deterministic sequence number (the service's
    admission order, or the topology's global route index in standalone
    use); session-level events (micro-batches, maintenance rounds) form a
    separate track.  Export never consults the clock — see the module
    docstring.
    """

    def __init__(self) -> None:
        self._queries: List[Tuple[int, Span]] = []
        self._events: List[Span] = []

    # -- collection ----------------------------------------------------
    def add_query(self, seq: int, root: Optional[Span]) -> None:
        """Attach one query's finished span tree under sequence number ``seq``."""
        if root is not None:
            self._queries.append((seq, root))

    def add_event(self, event: Span) -> Span:
        """Record a session-level (non-query) event span."""
        self._events.append(event)
        return event

    def event(self, name: str, **args: Any) -> Span:
        """Convenience: create and record a session-level event span."""
        return self.add_event(Span(name, args))

    @property
    def queries(self) -> List[Tuple[int, Span]]:
        """``(seq, root)`` pairs collected so far, in collection order."""
        return list(self._queries)

    @property
    def events(self) -> List[Span]:
        """Session-level event spans in collection order."""
        return list(self._events)

    @property
    def num_spans(self) -> int:
        """Total spans across every collected tree and event."""
        total = 0
        for _, root in self._queries:
            total += sum(1 for _ in root.walk())
        for event in self._events:
            total += sum(1 for _ in event.walk())
        return total

    # -- export --------------------------------------------------------
    def to_chrome_trace(self) -> Dict[str, Any]:
        """Chrome trace-event JSON object (Perfetto-loadable).

        Track layout: tid 0 carries the session-level events laid out
        sequentially; each query gets its own track at ``tid = seq + 1``
        starting at logical time 0.  Durations are logical work units —
        every span costs 1 plus its recorded kernel ``settled`` count,
        plus its children — so relative bar widths reflect deterministic
        search effort, not wall clock.
        """
        events: List[Dict[str, Any]] = [
            _metadata_event(0, "session"),
        ]
        clock = 0
        for event in self._events:
            clock += _emit_span(event, tid=0, start=clock, out=events)
        for seq, root in sorted(self._queries, key=lambda item: item[0]):
            tid = seq + 1
            events.append(_metadata_event(tid, f"query {seq}"))
            _emit_span(root, tid=tid, start=0, out=events)
        return {"displayTimeUnit": "ms", "traceEvents": events}

    def to_chrome_bytes(self) -> bytes:
        """Canonical JSON bytes of :meth:`to_chrome_trace`.

        Keys sorted, separators fixed, ASCII-only — the byte-identity
        surface asserted by the cross-backend tests.
        """
        return json.dumps(
            self.to_chrome_trace(), sort_keys=True, separators=(",", ":"),
            ensure_ascii=True,
        ).encode("ascii")

    def write_chrome_trace(self, path: str) -> int:
        """Write the canonical trace JSON to ``path``; returns bytes written."""
        payload = self.to_chrome_bytes()
        with open(path, "wb") as handle:
            handle.write(payload)
        return len(payload)

    def render_tree(self, max_queries: Optional[int] = None) -> str:
        """Human-readable tree view of the collected spans."""
        lines: List[str] = []
        if self._events:
            lines.append("session events:")
            for event in self._events:
                _render_span(event, "  ", lines)
        shown = sorted(self._queries, key=lambda item: item[0])
        omitted = 0
        if max_queries is not None and len(shown) > max_queries:
            omitted = len(shown) - max_queries
            shown = shown[:max_queries]
        for seq, root in shown:
            lines.append(f"query #{seq}:")
            _render_span(root, "  ", lines)
        if omitted:
            lines.append(f"... {omitted} more queries omitted")
        return "\n".join(lines)


def _metadata_event(tid: int, name: str) -> Dict[str, Any]:
    return {
        "ph": "M",
        "pid": 0,
        "tid": tid,
        "name": "thread_name",
        "args": {"name": name},
    }


def _span_own_cost(node: Span) -> int:
    """Logical duration of a span excluding children: 1 + kernel work."""
    settled = node.args.get("settled")
    if isinstance(settled, int) and settled > 0:
        return 1 + settled
    return 1


def _emit_span(node: Span, tid: int, start: int, out: List[Dict[str, Any]]) -> int:
    """Emit ``node`` and descendants as complete events; returns the duration."""
    children_events: List[Dict[str, Any]] = []
    clock = start
    for child in node.children:
        clock += _emit_span(child, tid=tid, start=clock, out=children_events)
    duration = (clock - start) + _span_own_cost(node)
    out.append(
        {
            "ph": "X",
            "pid": 0,
            "tid": tid,
            "ts": start,
            "dur": duration,
            "name": node.name,
            "cat": node.args.get("cat", "span"),
            "args": _json_args(node.args),
        }
    )
    out.extend(children_events)
    return duration


def _json_args(args: Dict[str, Any]) -> Dict[str, Any]:
    """JSON-safe copy of span args (tuples become lists)."""
    safe: Dict[str, Any] = {}
    for key, value in args.items():
        if isinstance(value, tuple):
            safe[key] = list(value)
        else:
            safe[key] = value
    return safe


def _format_args(args: Dict[str, Any]) -> str:
    if not args:
        return ""
    parts = []
    for key in args:
        value = args[key]
        if isinstance(value, float):
            value = round(value, 4)
        parts.append(f"{key}={value}")
    return " [" + " ".join(parts) + "]"


def _render_span(node: Span, indent: str, lines: List[str]) -> None:
    lines.append(f"{indent}{node.name}{_format_args(node.args)}")
    for child in node.children:
        _render_span(child, indent + "  ", lines)


def render_tree(root: Span) -> str:
    """Render one span tree as an indented text block."""
    lines: List[str] = []
    _render_span(root, "", lines)
    return "\n".join(lines)


def trees_from_chrome(payload: Dict[str, Any]) -> List[Tuple[int, List[Span]]]:
    """Rebuild span trees from an exported Chrome trace JSON object.

    The inverse of :meth:`TraceSession.to_chrome_trace` up to layout: used
    by ``repro trace`` to print a tree view of a trace file.  Returns
    ``(tid, roots)`` pairs sorted by tid; nesting is recovered from the
    ``ts``/``dur`` intervals (a child's interval lies within its parent's).
    """
    by_tid: Dict[int, List[Dict[str, Any]]] = {}
    for event in payload.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        by_tid.setdefault(int(event.get("tid", 0)), []).append(event)
    tracks: List[Tuple[int, List[Span]]] = []
    for tid in sorted(by_tid):
        events = sorted(
            by_tid[tid], key=lambda e: (e["ts"], -e["dur"])
        )
        roots: List[Span] = []
        stack: List[Tuple[int, int, Span]] = []  # (start, end, span)
        for event in events:
            node = Span(str(event.get("name", "")), dict(event.get("args", {})))
            start = int(event["ts"])
            end = start + int(event["dur"])
            while stack and start >= stack[-1][1]:
                stack.pop()
            if stack:
                stack[-1][2].children.append(node)
            else:
                roots.append(node)
            stack.append((start, end, node))
        tracks.append((tid, roots))
    return tracks

"""Kernel profiling hooks: per-search counters behind a null-object default.

The kernel primitives (:mod:`repro.kernel.primitives`) are the hot inner
loops of the repository — a per-relaxation branch testing "is profiling on?"
would tax every search even when nobody is measuring.  The hooks therefore
gate at *function entry*: each primitive performs exactly one
:func:`kernel_counters` lookup (a thread-local ``getattr``) and, when no
collector is active, runs its original unhooked loop byte for byte.  When a
:class:`KernelCounters` collector is active on the current thread, the
primitive switches to an instrumented twin of the same loop that counts

* ``searches`` — primitive invocations,
* ``settled`` — fresh heap pops (vertices whose distance became final),
* ``relaxed`` — successful edge relaxations (distance improvements),
* ``pruned`` — relaxations discarded by a lower-bound/cutoff test
  (:func:`~repro.kernel.primitives.bounded_dijkstra_arrays` /
  :func:`~repro.kernel.primitives.astar_arrays`),
* ``heap_pushes`` / ``heap_peak`` — heap traffic and high-water mark,
* ``bound_cache_hits`` / ``bound_cache_misses`` — per-target bound-array
  cache effectiveness in :mod:`repro.kernel.heuristics`,
* ``buckets`` / ``scatter_relaxations`` / ``frontier_peak`` — the
  frontier-at-a-time counters of the batched wavefront kernel
  (:mod:`repro.kernel.wavefront`): distance buckets processed, candidate
  relaxations applied by scatter, and the largest frontier swept.

The instrumented twins preserve the relaxation sequence exactly, so enabling
profiling never changes distances, predecessors or tie-breaks — the property
suite asserts bit-identical results with the collector on and off.

Activation is per thread (:func:`activate` / :func:`deactivate`, or the
:func:`collecting` context manager), which is what lets the distributed
layer profile each query of a concurrent batch into its own collector and
fold the totals into the per-query cost ledger afterwards.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

__all__ = [
    "KernelCounters",
    "kernel_counters",
    "activate",
    "deactivate",
    "collecting",
    "counters_snapshot",
    "counters_delta",
]

_local = threading.local()


class KernelCounters:
    """Mutable bundle of kernel search counters (one collector per scope)."""

    __slots__ = (
        "searches",
        "settled",
        "relaxed",
        "pruned",
        "heap_pushes",
        "heap_peak",
        "bound_cache_hits",
        "bound_cache_misses",
        "buckets",
        "scatter_relaxations",
        "frontier_peak",
    )

    def __init__(self) -> None:
        self.searches = 0
        self.settled = 0
        self.relaxed = 0
        self.pruned = 0
        self.heap_pushes = 0
        self.heap_peak = 0
        self.bound_cache_hits = 0
        self.bound_cache_misses = 0
        self.buckets = 0
        self.scatter_relaxations = 0
        self.frontier_peak = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain mapping of every counter (stable key order)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def merge(self, other: "KernelCounters") -> None:
        """Fold another collector into this one (sums; peak takes the max)."""
        self.searches += other.searches
        self.settled += other.settled
        self.relaxed += other.relaxed
        self.pruned += other.pruned
        self.heap_pushes += other.heap_pushes
        self.heap_peak = max(self.heap_peak, other.heap_peak)
        self.bound_cache_hits += other.bound_cache_hits
        self.bound_cache_misses += other.bound_cache_misses
        self.buckets += other.buckets
        self.scatter_relaxations += other.scatter_relaxations
        self.frontier_peak = max(self.frontier_peak, other.frontier_peak)

    def fold_into(self, registry) -> None:
        """Accumulate into a :class:`~repro.obs.metrics.MetricsRegistry`.

        Counter totals merge additively across executor ledgers (see the
        cluster absorb path); the heap high-water mark is a gauge merged by
        maximum.
        """
        registry.counter("kernel_searches_total").inc(self.searches)
        registry.counter("kernel_settled_total").inc(self.settled)
        registry.counter("kernel_relaxed_total").inc(self.relaxed)
        registry.counter("kernel_pruned_pushes_total").inc(self.pruned)
        registry.counter("kernel_heap_pushes_total").inc(self.heap_pushes)
        registry.gauge("kernel_heap_peak").set_max(self.heap_peak)
        registry.counter("kernel_bound_cache_hits_total").inc(self.bound_cache_hits)
        registry.counter("kernel_bound_cache_misses_total").inc(self.bound_cache_misses)
        registry.counter("kernel_buckets_total").inc(self.buckets)
        registry.counter("kernel_scatter_relaxations_total").inc(self.scatter_relaxations)
        registry.gauge("kernel_frontier_peak").set_max(self.frontier_peak)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"KernelCounters({fields})"


def kernel_counters() -> Optional[KernelCounters]:
    """The collector active on this thread, or ``None`` (profiling off).

    This is the single check the kernel primitives pay per call; everything
    per-relaxation lives inside the instrumented loop variants that only
    run when this returns a collector.
    """
    return getattr(_local, "counters", None)


def activate(counters: KernelCounters) -> None:
    """Route this thread's kernel counters into ``counters``."""
    _local.counters = counters


def deactivate() -> None:
    """Stop collecting kernel counters on this thread."""
    _local.counters = None


@contextmanager
def collecting() -> Iterator[KernelCounters]:
    """Scope a fresh collector over the ``with`` body (this thread only)."""
    counters = KernelCounters()
    previous = kernel_counters()
    activate(counters)
    try:
        yield counters
    finally:
        _local.counters = previous


#: Snapshot layout used by the tracing layer to attribute kernel work to
#: individual spans: ``(settled, relaxed, pruned, heap_pushes, searches)``.
Snapshot = Tuple[int, int, int, int, int]


def counters_snapshot() -> Optional[Snapshot]:
    """Capture the active collector's totals (``None`` when profiling off)."""
    counters = kernel_counters()
    if counters is None:
        return None
    return (
        counters.settled,
        counters.relaxed,
        counters.pruned,
        counters.heap_pushes,
        counters.searches,
    )


def counters_delta(snapshot: Snapshot) -> Dict[str, int]:
    """Counter growth since ``snapshot`` as span-args (empty if deactivated)."""
    counters = kernel_counters()
    if counters is None:
        return {}
    return {
        "settled": counters.settled - snapshot[0],
        "relaxed": counters.relaxed - snapshot[1],
        "pruned": counters.pruned - snapshot[2],
        "heap_pushes": counters.heap_pushes - snapshot[3],
        "searches": counters.searches - snapshot[4],
    }

"""Cross-layer metrics registry: counters, gauges, histograms, exposition.

The registry is the always-on pillar of :mod:`repro.obs`.  Components record
into named instruments through a :class:`MetricsRegistry`; registries merge
with :meth:`MetricsRegistry.absorb`, which is exactly how worker-side
metrics ride the executor layer's cost-ledger path: each concurrent task
charges a private :class:`~repro.distributed.cluster.SimulatedCluster`
ledger (which carries its own registry), and the master absorbs the ledgers
in submission order.  Because the merge operations are commutative over the
recorded multiset — counters add, gauges take the max, histograms merge
their sample multisets — the serial, thread and process backends converge
to identical registry contents for every deterministic instrument.

Histogram quantiles reuse the seeded-reservoir machinery that previously
lived inline in :mod:`repro.service.telemetry` (now lifted here as
:class:`ReservoirSampler` and re-imported by the service layer): memory is
bounded by a fixed-size reservoir, the sampler's RNG is seeded so replays
stay deterministic, and quantiles are computed over the *sorted* samples so
they are independent of merge order whenever the sample count stays below
the reservoir cap (above the cap they are a deterministic approximation).

:meth:`MetricsRegistry.render_prometheus` emits the Prometheus text
exposition format (``# HELP`` / ``# TYPE`` + samples, histograms as
summaries with quantile labels) consumed by ``repro stats --metrics`` and
the :class:`~repro.service.telemetry.ServiceReport` passthrough.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Union

__all__ = [
    "percentile",
    "ReservoirSampler",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

Number = Union[int, float]


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated ``q``-th percentile (``q`` in [0, 100]).

    Matches numpy's default ("linear") method; returns 0.0 on empty input
    so reports over zero observations stay printable.
    """
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (q / 100.0)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


class ReservoirSampler:
    """Fixed-size uniform reservoir sample with a seeded RNG.

    Algorithm R: the first ``max_samples`` observations are kept verbatim;
    afterwards observation ``n`` replaces a uniformly random slot with
    probability ``max_samples / n``.  The RNG is seeded, so a replayed
    stream of observations produces an identical reservoir — the
    determinism the serving-layer latency percentiles rely on.
    """

    __slots__ = ("max_samples", "count", "samples", "_rng")

    def __init__(self, max_samples: int, seed: int = 0) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be positive, got {max_samples}")
        self.max_samples = max_samples
        self.count = 0
        self.samples: List[float] = []
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        """Observe one value."""
        self.count += 1
        if len(self.samples) < self.max_samples:
            self.samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.max_samples:
                self.samples[slot] = value

    def __len__(self) -> int:
        return len(self.samples)

    def __getstate__(self):
        return (self.max_samples, self.count, self.samples, self._rng.getstate())

    def __setstate__(self, state) -> None:
        self.max_samples, self.count, self.samples, rng_state = state
        self._rng = random.Random()
        self._rng.setstate(rng_state)


class Counter:
    """Monotonically increasing total.  Merge: addition."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        self.value += amount

    def __getstate__(self):
        return (self.name, self.help, self.value)

    def __setstate__(self, state) -> None:
        self.name, self.help, self.value = state


class Gauge:
    """Point-in-time value.  Merge: maximum (high-water-mark semantics).

    Max-merge is what keeps gauges deterministic across executor ledgers —
    "last write" has no meaning when ledgers merge in submission order but
    tasks ran interleaved.
    """

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: Number = 0

    def set(self, value: Number) -> None:
        """Overwrite the gauge."""
        self.value = value

    def set_max(self, value: Number) -> None:
        """Raise the gauge to ``value`` if larger (high-water mark)."""
        if value > self.value:
            self.value = value

    def __getstate__(self):
        return (self.name, self.help, self.value)

    def __setstate__(self, state) -> None:
        self.name, self.help, self.value = state


class Histogram:
    """Distribution summary: exact count/sum/min/max + reservoir quantiles.

    Merge semantics: the exact streaming aggregates (count, sum, min, max)
    combine losslessly and commutatively; the reservoirs concatenate, which
    is multiset-exact — and therefore merge-order-independent — while the
    combined sample count stays at or below ``max_samples``.  Beyond the
    cap both recording and merging downsample deterministically (seeded
    RNG / sorted-stride), so results stay reproducible run to run even
    though they are then approximations.
    """

    __slots__ = ("name", "help", "count", "total", "min", "max", "_reservoir")

    #: Default reservoir size: big enough that every in-repo workload stays
    #: in the exact regime, small enough to bound ledger payloads.
    DEFAULT_MAX_SAMPLES = 4096

    def __init__(
        self, name: str, help: str = "", max_samples: int = DEFAULT_MAX_SAMPLES
    ) -> None:
        self.name = name
        self.help = help
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._reservoir = ReservoirSampler(max_samples, seed=0)

    def observe(self, value: Number) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._reservoir.add(value)

    @property
    def samples(self) -> List[float]:
        """The current reservoir sample (read-only view by convention)."""
        return self._reservoir.samples

    @property
    def mean(self) -> float:
        """Exact mean over every observation (not just the reservoir)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-th percentile (``q`` in [0, 100]) over the reservoir.

        Computed over the *sorted* samples, so the value depends only on
        the sample multiset, never on recording or merge order.
        """
        return percentile(self._reservoir.samples, q)

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in (exact aggregates + sample multisets)."""
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        combined = self._reservoir.samples + other._reservoir.samples
        cap = self._reservoir.max_samples
        if len(combined) > cap:
            # Deterministic, order-independent downsample: sort, then take
            # an evenly spaced stride.  A quantile approximation, but the
            # same one on every run.
            combined.sort()
            step = len(combined) / cap
            combined = [combined[int(i * step)] for i in range(cap)]
        self._reservoir.samples = combined

    def __getstate__(self):
        return (self.name, self.help, self.count, self.total, self.min, self.max,
                self._reservoir)

    def __setstate__(self, state) -> None:
        (self.name, self.help, self.count, self.total, self.min, self.max,
         self._reservoir) = state


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named instruments with deterministic merge and text exposition.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call registers the instrument (optionally with help text), later calls
    return the same object, so call sites stay one-liners::

        registry.counter("bolt_queries_total").inc()
    """

    __slots__ = ("_instruments",)

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def _get(self, name: str, cls, help: str, **kwargs) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name, help=help, **kwargs)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {cls.__name__}"
            )
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a counter."""
        return self._get(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create a gauge."""
        return self._get(name, Gauge, help)

    def histogram(
        self, name: str, help: str = "",
        max_samples: int = Histogram.DEFAULT_MAX_SAMPLES,
    ) -> Histogram:
        """Get or create a histogram."""
        return self._get(name, Histogram, help, max_samples=max_samples)

    def get(self, name: str) -> Optional[Instrument]:
        """Look an instrument up without creating it."""
        return self._instruments.get(name)

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self):
        return iter(self._instruments.values())

    def absorb(self, other: "MetricsRegistry") -> None:
        """Merge another registry into this one (the ledger-absorb path).

        Counters add, gauges take the max, histograms merge; instruments
        unknown to this registry are adopted by deep-ish copy through the
        merge path so later absorbs never alias the source.
        """
        for name, theirs in other._instruments.items():
            if isinstance(theirs, Counter):
                self.counter(name, theirs.help).inc(theirs.value)
            elif isinstance(theirs, Gauge):
                self.gauge(name, theirs.help).set_max(theirs.value)
            elif isinstance(theirs, Histogram):
                self.histogram(
                    name, theirs.help, max_samples=theirs._reservoir.max_samples
                ).merge(theirs)

    def as_dict(self) -> Dict[str, Number]:
        """Flat name → value mapping (histograms expand to _count/_sum)."""
        out: Dict[str, Number] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                out[f"{name}_count"] = instrument.count
                out[f"{name}_sum"] = instrument.total
            else:
                out[name] = instrument.value
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition (instruments sorted by name).

        Histograms render as summaries (quantile-labelled samples plus
        ``_count`` / ``_sum``), which matches how their reservoir actually
        answers quantile queries.
        """
        lines: List[str] = []
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            if isinstance(instrument, Counter):
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name} {_format_value(instrument.value)}")
            elif isinstance(instrument, Gauge):
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {_format_value(instrument.value)}")
            else:
                lines.append(f"# TYPE {name} summary")
                for q in (50.0, 90.0, 95.0, 99.0):
                    value = instrument.quantile(q)
                    lines.append(
                        f'{name}{{quantile="{q / 100.0:g}"}} {_format_value(value)}'
                    )
                lines.append(f"{name}_count {instrument.count}")
                lines.append(f"{name}_sum {_format_value(instrument.total)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def __getstate__(self):
        return self._instruments

    def __setstate__(self, state) -> None:
        self._instruments = state


def _format_value(value: Number) -> str:
    """Exposition value formatting: ints stay ints, floats use repr."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))

"""Cross-layer observability: metrics registry, span tracing, kernel profiling.

``repro.obs`` is the shared substrate the other layers report into:

* :mod:`repro.obs.metrics` — counters / gauges / histograms with the
  seeded-reservoir quantile machinery, deterministic cross-executor
  merging (:meth:`MetricsRegistry.absorb` rides the cluster ledger absorb
  path), and Prometheus-style text exposition.
* :mod:`repro.obs.trace` — per-query span trees through the full service →
  topology → bolt → kernel lifecycle, exported as replay-deterministic
  Chrome trace-event JSON (Perfetto-loadable) or a text tree view.
* :mod:`repro.obs.profile` — opt-in kernel search counters behind a
  null-object default, so the disabled path costs one thread-local lookup
  per primitive call and zero per-relaxation branches.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ReservoirSampler,
    percentile,
)
from .profile import (
    KernelCounters,
    activate,
    collecting,
    counters_delta,
    counters_snapshot,
    deactivate,
    kernel_counters,
)
from .trace import (
    Span,
    TraceSession,
    add_span_args,
    begin_trace,
    current_span,
    end_trace,
    mark,
    pop_span,
    push_span,
    render_tree,
    span,
    trace_active,
    trees_from_chrome,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ReservoirSampler",
    "percentile",
    "KernelCounters",
    "activate",
    "collecting",
    "counters_delta",
    "counters_snapshot",
    "deactivate",
    "kernel_counters",
    "Span",
    "TraceSession",
    "add_span_args",
    "begin_trace",
    "current_span",
    "end_trace",
    "mark",
    "pop_span",
    "push_span",
    "render_tree",
    "span",
    "trace_active",
    "trees_from_chrome",
]

"""Hysteresis-driven worker autoscaling on top of the load telemetry.

The load-adaptive placement layer (:mod:`repro.distributed.rebalance`)
reacts to *skew* — it moves subgraphs between a fixed pool of workers.
This module reacts to *saturation*: when every worker is hot, no migration
helps, the pool itself must grow; when the pool idles, workers should be
drained and returned.  :class:`Autoscaler` watches the same per-batch
telemetry the rebalancer consumes and answers one question after each
batch: scale up, scale down, or hold.

The decision rule is deliberately simple and — under the default
``"tasks"`` metric — deterministic, so an autoscaling topology keeps the
repo's cross-backend bit-identity contract exactly like a rebalancing one:

* maintain a decayed average of the per-worker load per batch (the
  *saturation*), mirroring :class:`~repro.distributed.rebalance.Rebalancer`'s
  rolling loads;
* above ``high``, add a worker (the topology then runs the join surgery,
  :meth:`~repro.distributed.topology.StormTopology.add_worker`);
* below ``low``, retire the coldest worker
  (:meth:`~repro.distributed.topology.StormTopology.retire_worker`);
* hysteresis (``low < high``), a warm-up (``min_batches``) and a
  ``cooldown`` between scale events prevent thrashing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..graph.errors import ClusterError
from .rebalance import LOAD_METRICS

__all__ = ["AutoscaleConfig", "Autoscaler", "resolve_autoscale"]


@dataclass(frozen=True)
class AutoscaleConfig:
    """Tuning knobs of the autoscaling loop.

    Attributes
    ----------
    high:
        Saturation threshold (rolling per-worker load per batch, in the
        configured metric's unit) above which a worker is added.
    low:
        Threshold below which a worker is retired.  Defaults to
        ``high / 4`` — a wide hysteresis band, so a freshly grown pool
        (whose per-worker load drops by ``1/n``) does not immediately
        re-shrink.
    metric:
        ``"tasks"`` (deterministic, default) or ``"seconds"`` — same
        semantics as :class:`~repro.distributed.rebalance.RebalanceConfig`.
    min_workers / max_workers:
        Pool bounds; decisions outside them are suppressed.
    decay:
        Rolling-average decay per batch (``1.0`` = plain mean over all
        batches, smaller forgets old traffic faster).
    min_batches:
        Observations required before the first decision.
    cooldown:
        Batches to hold after a scale event before deciding again, so the
        rolling average reflects the new pool size first.
    """

    high: float
    low: Optional[float] = None
    metric: str = "tasks"
    min_workers: int = 1
    max_workers: int = 32
    decay: float = 1.0
    min_batches: int = 2
    cooldown: int = 2

    def __post_init__(self) -> None:
        if self.high <= 0.0:
            raise ClusterError(f"autoscale high watermark must be > 0, got {self.high}")
        if self.low is None:
            object.__setattr__(self, "low", self.high / 4.0)
        if not 0.0 <= self.low < self.high:
            raise ClusterError(
                f"autoscale low watermark must be in [0, high), got {self.low}"
            )
        if self.metric not in LOAD_METRICS:
            raise ClusterError(
                f"unknown load metric {self.metric!r}; expected one of {LOAD_METRICS}"
            )
        if self.min_workers < 1:
            raise ClusterError("min_workers must be >= 1")
        if self.max_workers < self.min_workers:
            raise ClusterError("max_workers must be >= min_workers")
        if not 0.0 < self.decay <= 1.0:
            raise ClusterError(f"decay must be in (0, 1], got {self.decay}")
        if self.min_batches < 1:
            raise ClusterError("min_batches must be >= 1")
        if self.cooldown < 0:
            raise ClusterError("cooldown must be >= 0")


def resolve_autoscale(
    spec: Union[None, bool, int, float, str, AutoscaleConfig],
) -> Optional[AutoscaleConfig]:
    """Normalise a user-facing autoscale spec into a config (or ``None``).

    ``None``/``False``/``0``/``"off"`` disable; a number (or numeric
    string) becomes the ``high`` watermark with the derived default
    ``low``; ``"HIGH:LOW"`` sets both; an :class:`AutoscaleConfig` passes
    through.  There is no bare ``"on"`` — the saturation watermark is
    workload-dependent, so enabling without one would be a silent guess.
    """
    if spec is None or spec is False:
        return None
    if spec is True:
        raise ClusterError(
            "autoscale needs a saturation watermark (tasks per worker per "
            "batch); pass a number or 'HIGH:LOW'"
        )
    if isinstance(spec, AutoscaleConfig):
        return spec
    if isinstance(spec, str):
        lowered = spec.strip().lower()
        if lowered in ("", "off", "false", "no", "0"):
            return None
        parts = lowered.split(":")
        try:
            if len(parts) == 1:
                return AutoscaleConfig(high=float(parts[0]))
            if len(parts) == 2:
                return AutoscaleConfig(high=float(parts[0]), low=float(parts[1]))
        except ValueError:
            pass
        raise ClusterError(
            f"cannot parse autoscale spec {spec!r}; expected HIGH or HIGH:LOW"
        )
    if isinstance(spec, (int, float)):
        if spec == 0:
            return None
        return AutoscaleConfig(high=float(spec))
    raise ClusterError(f"cannot resolve autoscale spec from {spec!r}")


class Autoscaler:
    """Rolling saturation tracking plus the scale-up/-down trigger.

    Owned by a topology, which calls :meth:`observe` once per completed
    metric-reset batch with the batch's total subgraph load and the alive
    worker count, and acts on the returned decision.
    """

    def __init__(self, config: AutoscaleConfig) -> None:
        self.config = config
        self._load_sum = 0.0
        self._norm = 0.0
        self._batches = 0
        self._cooldown = 0
        #: Executed scale events (bumped by the owning topology).
        self.scale_ups = 0
        self.scale_downs = 0

    @property
    def batches_observed(self) -> int:
        """Batches folded into the rolling saturation so far."""
        return self._batches

    @property
    def saturation(self) -> float:
        """Decayed average per-worker load per batch."""
        if self._norm <= 0.0:
            return 0.0
        return self._load_sum / self._norm

    def observe(self, total_load: float, num_workers: int) -> Optional[str]:
        """Fold one batch in and decide: ``"up"``, ``"down"`` or ``None``.

        A decision does not itself change any state beyond starting the
        cooldown — the owning topology performs the join/retire surgery
        and records it via :meth:`record_scaled`.
        """
        if num_workers < 1:
            raise ClusterError("autoscaler needs at least one alive worker")
        decay = self.config.decay
        self._load_sum = self._load_sum * decay + total_load / num_workers
        self._norm = self._norm * decay + 1.0
        self._batches += 1
        if self._batches < self.config.min_batches:
            return None
        if self._cooldown > 0:
            self._cooldown -= 1
            return None
        saturation = self.saturation
        if saturation > self.config.high and num_workers < self.config.max_workers:
            self._cooldown = self.config.cooldown
            return "up"
        if saturation < self.config.low and num_workers > self.config.min_workers:
            self._cooldown = self.config.cooldown
            return "down"
        return None

    def record_scaled(self, direction: str) -> None:
        """Record an executed scale event and reset the rolling average.

        The pool size changed, so per-worker samples from the old shape
        would bias the next decision; starting fresh (plus the cooldown)
        is what makes the hysteresis effective.
        """
        if direction == "up":
            self.scale_ups += 1
        elif direction == "down":
            self.scale_downs += 1
        else:
            raise ClusterError(f"unknown scale direction {direction!r}")
        self._load_sum = 0.0
        self._norm = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Autoscaler high={self.config.high} low={self.config.low} "
            f"ups={self.scale_ups} downs={self.scale_downs}>"
        )

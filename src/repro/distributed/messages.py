"""Message (tuple) types exchanged in the simulated Storm topology.

Apache Storm moves data between spouts and bolts as *tuples* on named
streams.  The simulated runtime models the same flow explicitly so that the
communication-cost analysis of Section 5.6.1 can be reproduced: each message
carries a ``payload_units`` size measured in "vertices transmitted", the unit
the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..graph.paths import Path

__all__ = [
    "Message",
    "QueryMessage",
    "WeightUpdateMessage",
    "ReferencePathMessage",
    "PartialPathsMessage",
    "AttachmentRequestMessage",
    "AttachmentResponseMessage",
]


@dataclass
class Message:
    """Base message with routing metadata and a size in transfer units.

    Attributes
    ----------
    sender, recipient:
        Logical component names (e.g. ``"spout"``, ``"subgraph-bolt-3"``).
    payload_units:
        Size of the message measured in vertices, the unit of the paper's
        communication-cost analysis.
    """

    sender: str
    recipient: str
    payload_units: int = 1


@dataclass
class QueryMessage(Message):
    """A KSP query entering the topology."""

    query_id: int = 0
    source: int = 0
    target: int = 0
    k: int = 1


@dataclass
class WeightUpdateMessage(Message):
    """A batch of edge-weight updates routed to one SubgraphBolt."""

    subgraph_id: int = 0
    num_updates: int = 0


@dataclass
class ReferencePathMessage(Message):
    """A reference path broadcast from a QueryBolt to the SubgraphBolts."""

    query_id: int = 0
    reference_path: Optional[Path] = None


@dataclass
class PartialPathsMessage(Message):
    """Partial k shortest paths returned by a SubgraphBolt to a QueryBolt."""

    query_id: int = 0
    pair_paths: Dict[Tuple[int, int], List[Path]] = field(default_factory=dict)


@dataclass
class AttachmentRequestMessage(Message):
    """Step-1 request: compute lower bounds from a non-boundary endpoint."""

    query_id: int = 0
    vertex: int = 0


@dataclass
class AttachmentResponseMessage(Message):
    """Step-1 response: lower bounds from the endpoint to boundary vertices."""

    query_id: int = 0
    vertex: int = 0
    bounds: Dict[int, float] = field(default_factory=dict)

"""Load-adaptive placement: telemetry aggregation and live subgraph migration.

The paper fixes the subgraph→worker placement at deployment time (Section
5.2's greedy balance over *estimated* load, i.e. vertex counts).  Real road
traffic is skewed and drifts — rush-hour hotspots concentrate both queries
and weight updates on a few partitions — so a static assignment goes stale.
This module closes the loop from the cost telemetry the cluster already
collects back into :class:`~repro.distributed.placement.Placement`:

* :class:`LoadReport` aggregates the per-subgraph charges recorded by the
  :class:`~repro.distributed.cluster.SimulatedCluster` (every SubgraphBolt
  operation is attributed to the subgraph it served) into per-worker loads
  under the current placement, and scores the skew as the max/mean
  worker-load ratio.
* :class:`Rebalancer` keeps a *rolling* per-subgraph load (exponential
  decay across micro-batches) and decides when the skew crosses the
  configured :class:`RebalanceConfig` threshold.
* :func:`plan_rebalance` computes the corrective placement: the same
  :func:`~repro.distributed.placement.greedy_balance` the deployment used,
  but cost-weighted by the *observed* subgraph loads instead of the vertex
  counts, emitting the minimal move list (only subgraphs whose owner
  changed migrate).
* :func:`apply_moves` is the migration surgery itself, shared between the
  master topology and the process-backend
  :class:`~repro.distributed.runtime.TopologyReplica` so both sides of the
  pipe perform bit-for-bit the same re-hosting (see ``ARCHITECTURE.md``,
  "Load telemetry & rebalancing").

Determinism: the default load metric is ``"tasks"`` — the count of
subgraph-attributed operations — which is identical on every execution
backend, so a rebalancing topology keeps the repo's cross-backend
bit-identity contract (same placements, same migrations, same counters on
serial, thread and process).  The ``"seconds"`` metric uses measured wall
clock instead; it tracks true hardware cost but makes placement decisions
host-dependent, so it is opt-in.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from ..graph.errors import ClusterError
from .placement import Placement, greedy_balance

__all__ = [
    "LOAD_METRICS",
    "RebalanceConfig",
    "resolve_rebalance",
    "default_rebalance_spec",
    "LoadReport",
    "MigrationPlan",
    "ElasticityStats",
    "collect_subgraph_loads",
    "plan_rebalance",
    "plan_join",
    "apply_moves",
    "apply_join",
    "Rebalancer",
]

#: One migration: ``(subgraph_id, source_worker, target_worker)``.
Move = Tuple[int, int, int]

#: Accepted values for :attr:`RebalanceConfig.metric`.
LOAD_METRICS = ("tasks", "seconds")


@dataclass(frozen=True)
class RebalanceConfig:
    """Tuning knobs of the load-adaptive placement loop.

    Attributes
    ----------
    threshold:
        Imbalance trigger: rebalance when the rolling max/mean worker-load
        ratio exceeds this.  ``1.0`` is perfect balance; the default
        ``1.25`` tolerates 25% overload on the hottest worker.
    metric:
        ``"tasks"`` (deterministic operation counts, default — keeps
        placement identical across execution backends) or ``"seconds"``
        (measured wall clock, host-dependent).
    decay:
        Multiplier applied to the rolling per-subgraph loads before each
        new batch is folded in; ``1.0`` accumulates forever, smaller
        values forget old traffic faster (a rolling window).
    check_every:
        Auto-check cadence in micro-batches; the topology tests the
        trigger after every ``check_every``-th observed batch.  ``0``
        disables automatic checks (callers invoke
        :meth:`~repro.distributed.topology.StormTopology.maybe_rebalance`
        themselves).
    min_batches:
        Observations required before the first check, so one unlucky
        micro-batch cannot thrash the placement.
    """

    threshold: float = 1.25
    metric: str = "tasks"
    decay: float = 1.0
    check_every: int = 1
    min_batches: int = 1

    def __post_init__(self) -> None:
        if self.threshold < 1.0:
            raise ClusterError(
                f"rebalance threshold must be >= 1.0, got {self.threshold}"
            )
        if self.metric not in LOAD_METRICS:
            raise ClusterError(
                f"unknown load metric {self.metric!r}; expected one of {LOAD_METRICS}"
            )
        if not 0.0 < self.decay <= 1.0:
            raise ClusterError(f"decay must be in (0, 1], got {self.decay}")
        if self.check_every < 0:
            raise ClusterError("check_every must be >= 0")
        if self.min_batches < 1:
            raise ClusterError("min_batches must be >= 1")


def default_rebalance_spec() -> Optional[str]:
    """Rebalance default from ``$REPRO_REBALANCE``, as a raw spec string.

    Returns ``None`` when the variable is unset or empty; otherwise the
    raw value, to be normalised by :func:`resolve_rebalance` (one parser,
    shared with every API surface): ``"0"``/``"off"``/``"false"`` disable,
    ``"on"``/``"true"`` enable with the default threshold, a number >= 1
    enables with that threshold verbatim.  Mirrors how
    ``$REPRO_EXECUTOR`` provides the backend default.
    """
    return os.environ.get("REPRO_REBALANCE", "").strip() or None


def resolve_rebalance(
    spec: Union[None, bool, float, str, RebalanceConfig],
) -> Optional[RebalanceConfig]:
    """Normalise a user-facing rebalance spec into a config (or ``None``).

    ``None``/``False``/``0`` disable; ``True`` and the words
    ``"on"``/``"true"``/``"yes"``/``"default"`` enable with the default
    threshold; any number >= 1 — numeric or string, ``1.0`` included —
    becomes the threshold verbatim (``1.0`` is the legal hair-trigger
    setting, never remapped); a :class:`RebalanceConfig` passes through.
    The same parser serves the API, the CLI and ``$REPRO_REBALANCE``, so
    every surface agrees on what a given spec means.
    """
    if spec is None or spec is False:
        return None
    if spec is True:
        return RebalanceConfig()
    if isinstance(spec, RebalanceConfig):
        return spec
    if isinstance(spec, str):
        lowered = spec.strip().lower()
        if lowered in ("", "off", "false", "no"):
            return None
        if lowered in ("on", "true", "yes", "default"):
            return RebalanceConfig()
        try:
            number = float(lowered)
        except ValueError:
            raise ClusterError(
                f"cannot parse rebalance spec {spec!r}; expected on/off or a "
                "threshold >= 1.0"
            ) from None
        return resolve_rebalance(number)
    if isinstance(spec, (int, float)):
        if spec == 0:
            return None
        return RebalanceConfig(threshold=float(spec))
    raise ClusterError(f"cannot resolve rebalance spec from {spec!r}")


def collect_subgraph_loads(cluster, metric: str = "tasks") -> Dict[int, float]:
    """Sum the per-subgraph charges across every worker of one cluster.

    ``cluster`` is anything exposing the
    :class:`~repro.distributed.cluster.SimulatedCluster` worker/stats
    surface.  A subgraph's charges may be spread over several workers'
    stats after a migration — load follows the subgraph, not the host.
    """
    if metric not in LOAD_METRICS:
        raise ClusterError(
            f"unknown load metric {metric!r}; expected one of {LOAD_METRICS}"
        )
    subgraph_load: Dict[int, float] = {}
    for worker in cluster.workers:
        source = (
            worker.stats.subgraph_tasks
            if metric == "tasks"
            else worker.stats.subgraph_seconds
        )
        for subgraph_id, amount in source.items():
            subgraph_load[subgraph_id] = subgraph_load.get(subgraph_id, 0.0) + float(
                amount
            )
    return subgraph_load


@dataclass(frozen=True)
class LoadReport:
    """Observed subgraph loads aggregated under one placement.

    Attributes
    ----------
    workers:
        The worker ids the loads were aggregated over — all workers of the
        placement by default, or the surviving subset after failures (dead
        workers must neither receive migrated subgraphs nor skew the mean).
    metric:
        Which charge stream was aggregated (``"tasks"`` or ``"seconds"``).
    subgraph_load:
        Observed load per subgraph id (the unit follows ``metric``).
    worker_load:
        Sum of the owned subgraphs' loads per worker id; every worker in
        ``workers`` appears, including idle ones.
    """

    workers: Tuple[int, ...]
    metric: str
    subgraph_load: Dict[int, float] = field(default_factory=dict)
    worker_load: Dict[int, float] = field(default_factory=dict)
    #: Elasticity context of the topology the report was taken from:
    #: workers that joined (scale-up) and were lost (failures) since
    #: deployment.  Zero for reports built outside a topology.
    workers_joined: int = 0
    workers_lost: int = 0

    @classmethod
    def collect(
        cls,
        cluster,
        placement: Placement,
        metric: str = "tasks",
        workers: Optional[Sequence[int]] = None,
    ) -> "LoadReport":
        """Aggregate one cluster's per-subgraph charges under ``placement``.

        ``cluster`` is anything exposing the
        :class:`~repro.distributed.cluster.SimulatedCluster` worker/stats
        surface; the per-subgraph dicts on each worker's stats are summed
        (a subgraph's charges may be spread over several workers' stats
        after a migration — load follows the subgraph, not the host).
        """
        return cls.from_loads(
            collect_subgraph_loads(cluster, metric), placement, metric,
            workers=workers,
        )

    @classmethod
    def from_loads(
        cls,
        subgraph_load: Mapping[int, float],
        placement: Placement,
        metric: str = "tasks",
        workers: Optional[Sequence[int]] = None,
    ) -> "LoadReport":
        """Roll per-subgraph loads up to per-worker loads under ``placement``.

        Subgraphs missing from ``subgraph_load`` count as zero; loads for
        subgraphs the placement does not know are ignored (they belong to
        a previous partition).  ``workers`` defaults to every worker of the
        placement; pass the surviving subset after failures.
        """
        pool: Tuple[int, ...] = (
            tuple(range(placement.num_workers))
            if workers is None
            else tuple(sorted(set(workers)))
        )
        if not pool:
            raise ClusterError("a load report needs at least one worker")
        worker_load: Dict[int, float] = {worker_id: 0.0 for worker_id in pool}
        known: Dict[int, float] = {}
        for subgraph_id, worker_id in sorted(placement.assignment.items()):
            load = float(subgraph_load.get(subgraph_id, 0.0))
            known[subgraph_id] = load
            if worker_id in worker_load:
                worker_load[worker_id] += load
        return cls(
            workers=pool,
            metric=metric,
            subgraph_load=known,
            worker_load=worker_load,
        )

    @property
    def total_load(self) -> float:
        """Sum of all per-subgraph loads."""
        return sum(self.subgraph_load.values())

    def imbalance(self) -> float:
        """Skew score: max worker load over mean worker load.

        ``1.0`` means perfectly balanced; ``len(workers)`` means one
        worker carries everything.  A cluster with no observed load
        reports ``1.0`` (nothing to balance).
        """
        loads = [self.worker_load.get(w, 0.0) for w in self.workers]
        mean = sum(loads) / max(len(loads), 1)
        if mean <= 0.0:
            return 1.0
        return max(loads) / mean


@dataclass(frozen=True)
class MigrationPlan:
    """A corrective placement plus the moves that reach it.

    Attributes
    ----------
    placement:
        The target placement (complete assignment, not a delta).
    moves:
        ``(subgraph_id, source_worker, target_worker)`` triples, sorted by
        subgraph id, covering exactly the subgraphs whose owner changes.
    imbalance_before / imbalance_after:
        Max/mean worker-load ratio under the old and new placement,
        computed from the same observed loads.
    metric:
        Load metric the plan was computed from.
    """

    placement: Placement
    moves: Tuple[Move, ...]
    imbalance_before: float
    imbalance_after: float
    metric: str


def plan_rebalance(
    load: LoadReport,
    placement: Placement,
    threshold: float = 1.25,
    force: bool = False,
    baseline: Optional[Mapping[int, float]] = None,
) -> Optional[MigrationPlan]:
    """Plan a cost-weighted re-placement when the observed skew warrants it.

    Returns ``None`` when the observed imbalance is at or below
    ``threshold`` (unless ``force``), when there is no observed load, when
    the replacement assignment moves nothing, or when it would not
    actually improve the observed imbalance (e.g. one indivisible hot
    subgraph dominates — migrating around it only churns state).
    Otherwise the new assignment is
    :func:`~repro.distributed.placement.greedy_balance` over the
    *observed* subgraph loads — the deployment-time algorithm, re-run with
    real costs — iterated in subgraph-id order so the plan is
    deterministic and identical on every execution backend (given the
    deterministic ``"tasks"`` metric).

    ``baseline`` (e.g. per-subgraph vertex counts, the deployment-time
    estimate) breaks ties among unobserved subgraphs: scaled down to 0.1%
    of the observed total, it spreads cold subgraphs by size instead of
    letting greedy's first-minimum tie-break pile all of them onto one
    worker, without ever outvoting real observations.
    """
    imbalance_before = load.imbalance()
    if not force and imbalance_before <= threshold:
        return None
    if not load.subgraph_load or load.total_load <= 0.0:
        return None
    # Subgraph-id order fixes greedy tie-breaking; the loads themselves
    # decide the largest-first processing order inside greedy_balance.
    # Assign over the report's (alive) worker pool, then map the dense
    # greedy slots back to real worker ids.
    weights = {sid: load.subgraph_load[sid] for sid in sorted(load.subgraph_load)}
    if baseline:
        baseline_total = sum(baseline.get(sid, 0.0) for sid in weights) or 1.0
        tiebreak_scale = load.total_load * 1e-3 / baseline_total
        weights = {
            sid: observed + baseline.get(sid, 0.0) * tiebreak_scale
            for sid, observed in weights.items()
        }
    pool = load.workers
    dense = greedy_balance(weights, len(pool))
    assignment = {sid: pool[slot] for sid, slot in dense.items()}
    moves = tuple(
        (sid, placement.worker_of(sid), assignment[sid])
        for sid in sorted(assignment)
        if assignment[sid] != placement.worker_of(sid)
    )
    if not moves:
        return None
    new_placement = Placement(placement.num_workers, assignment)
    after = LoadReport.from_loads(
        load.subgraph_load, new_placement, load.metric, workers=pool
    )
    if not force and after.imbalance() >= imbalance_before:
        return None
    return MigrationPlan(
        placement=new_placement,
        moves=moves,
        imbalance_before=imbalance_before,
        imbalance_after=after.imbalance(),
        metric=load.metric,
    )


def plan_join(
    load: LoadReport,
    placement: Placement,
    joiner: int,
) -> Optional[MigrationPlan]:
    """Plan the migration onto a freshly joined (empty) worker.

    The inverse of the failover plan: instead of spreading a dead worker's
    subgraphs over the survivors, subgraphs are *stolen* from the loaded
    workers onto the joiner.  Each step takes the currently hottest donor
    (lowest id on ties) and moves its heaviest subgraph (lowest id on
    ties) whose transfer keeps the joiner strictly below the donor's
    pre-move load — the classic work-stealing condition, which terminates
    (every subgraph moves at most once) and never turns the joiner into
    the new hotspot.  Iteration order is fixed by worker/subgraph id, so
    the plan is deterministic and identical on every execution backend
    given the deterministic ``"tasks"`` metric.

    ``load`` must include the joiner in its worker pool (with zero load).
    Returns ``None`` when nothing can usefully move (e.g. a single
    subgraph, or no observed/baseline load at all).
    """
    if joiner not in load.workers:
        raise ClusterError(f"joiner {joiner} missing from the load report pool")
    loads = {worker_id: load.worker_load.get(worker_id, 0.0) for worker_id in load.workers}
    assignment = dict(placement.assignment)
    sub_load = load.subgraph_load
    donors = sorted(worker_id for worker_id in load.workers if worker_id != joiner)
    if not donors:
        return None
    moves = []
    while True:
        # Hottest donor first, but fall through to cooler donors when the
        # hottest one cannot donate (e.g. it owns a single huge subgraph
        # the stealing condition refuses to move wholesale).
        stolen = False
        for donor in sorted(donors, key=lambda worker_id: (-loads[worker_id], worker_id)):
            best_sid: Optional[int] = None
            best_load = -1.0
            for sid in sorted(s for s, w in assignment.items() if w == donor):
                amount = float(sub_load.get(sid, 0.0))
                if loads[joiner] + amount < loads[donor] and amount > best_load:
                    best_sid, best_load = sid, amount
            if best_sid is None:
                continue
            assignment[best_sid] = joiner
            loads[donor] -= best_load
            loads[joiner] += best_load
            moves.append((best_sid, donor, joiner))
            stolen = True
            break
        if not stolen:
            break
    if not moves:
        return None
    num_workers = max(placement.num_workers, joiner + 1)
    new_placement = Placement(num_workers, assignment)
    after = LoadReport.from_loads(
        sub_load, new_placement, load.metric, workers=load.workers
    )
    return MigrationPlan(
        placement=new_placement,
        moves=tuple(sorted(moves)),
        imbalance_before=load.imbalance(),
        imbalance_after=after.imbalance(),
        metric=load.metric,
    )


def apply_moves(
    moves: Sequence[Move],
    subgraph_bolts,
    cluster,
    dtlp,
    *,
    transfer_state: bool = True,
) -> int:
    """Execute a move list against live SubgraphBolts: the migration surgery.

    For every ``(subgraph_id, source, target)``: the subgraph id is removed
    from the source bolt and added to the target bolt, the resident
    first-level index memory is re-attributed (released on the source,
    charged on the target), and — when ``transfer_state`` — shipping the
    subgraph state is charged as communication of the subgraph's vertex
    count from source to target (the same unit the paper's Section 5.6.1
    cost model uses).  ``transfer_state=False`` is the failover path: the
    source worker is gone, survivors rebuild from the shared graph store,
    so only memory is charged on the gainer.

    Shared by the master topology and the process-backend replicas: both
    run exactly this function with the master-computed move list, so the
    two copies of the logical topology stay bit-identical.

    Returns the number of subgraphs migrated.
    """
    by_worker = {}
    for bolt in subgraph_bolts:
        by_worker.setdefault(bolt.worker_id, []).append(bolt)
    migrated = 0
    for subgraph_id, source, target in moves:
        source_bolt = next(
            (b for b in by_worker.get(source, []) if subgraph_id in b.subgraph_ids),
            None,
        )
        targets = by_worker.get(target)
        if targets is None:
            raise ClusterError(
                f"cannot migrate subgraph {subgraph_id}: no SubgraphBolt on "
                f"worker {target}"
            )
        if source_bolt is None and transfer_state:
            raise ClusterError(
                f"cannot migrate subgraph {subgraph_id}: worker {source} "
                "does not own it"
            )
        target_bolt = targets[0]
        if source_bolt is not None:
            source_bolt.subgraph_ids.discard(subgraph_id)
        target_bolt.subgraph_ids.add(subgraph_id)
        memory = dtlp.subgraph_index(subgraph_id).memory_estimate_bytes()
        if transfer_state and source_bolt is not None:
            cluster.worker(source).charge_memory(-memory)
            cluster.send(
                source, target, dtlp.partition.subgraph(subgraph_id).num_vertices
            )
        cluster.worker(target).charge_memory(memory)
        migrated += 1
    if migrated:
        cluster.metrics.counter(
            "rebalance_subgraphs_migrated_total",
            help="Subgraphs moved between workers by live migration",
        ).inc(migrated)
    return migrated


def apply_join(
    moves: Sequence[Move],
    subgraph_bolts,
    cluster,
    dtlp,
    *,
    from_store: bool = False,
    catchup_updates: int = 0,
) -> int:
    """Execute a join plan: :func:`apply_moves` with the joiner's cold-start path.

    Without a partition store the joiner receives each migrated subgraph's
    state from its previous host (``transfer_state=True`` — peer transfer
    charged in vertex units).  With ``from_store`` the joiner instead loads
    the partition files from disk, so no peer transfer is charged: sources
    still release the index memory, and the master ships only the
    ``catchup_updates``-long weight delta since the store was saved —
    O(load) cold start instead of O(state).  Shared by the master topology
    and the process-backend replicas, exactly like :func:`apply_moves`.
    """
    if not from_store:
        return apply_moves(
            moves, subgraph_bolts, cluster, dtlp, transfer_state=True
        )
    migrated = apply_moves(
        moves, subgraph_bolts, cluster, dtlp, transfer_state=False
    )
    joiners = set()
    for subgraph_id, source, target in moves:
        # transfer_state=False charges only the gainer's memory (the
        # failover contract, where the source is gone); on a join the
        # source is alive and hands its copy off, so release it here.
        cluster.worker(source).charge_memory(
            -dtlp.subgraph_index(subgraph_id).memory_estimate_bytes()
        )
        joiners.add(target)
    if catchup_updates > 0:
        for target in sorted(joiners):
            cluster.send(-1, target, catchup_updates)  # master -> joiner
    return migrated


@dataclass
class ElasticityStats:
    """Recovery/elasticity SLO counters of one topology.

    Everything here is deterministic across execution backends except
    ``recovery_seconds`` (measured wall clock of the join/fail/retire
    surgeries — an SLO, not a replayable counter), which is why the
    deterministic fields also ride the cluster metrics registry while the
    seconds stay report-only.
    """

    workers_joined: int = 0
    workers_lost: int = 0
    workers_retired: int = 0
    #: Vertex units shipped to joiners (peer transfer) plus catch-up
    #: deltas (store-backed joins), cumulative across joins.
    join_transfer_units: int = 0
    #: Subgraphs re-hosted by failovers, retirements and joins.
    subgraphs_recovered: int = 0
    #: Queries re-routed because their target QueryBolt died before they
    #: were served (the harness's at-least-once retry path).
    retried_queries: int = 0
    #: Queries lost outright; stays zero under the retry policy and is
    #: reported so that "zero" is an asserted fact rather than an absence.
    dropped_queries: int = 0
    #: Wall clock spent inside recovery surgery (join + failover + retire).
    recovery_seconds: float = 0.0

    def fold_into(self, metrics) -> None:
        """Charge the deterministic counters into a metrics registry."""
        metrics.counter(
            "elasticity_workers_joined_total", help="workers added by scale-up"
        ).inc(self.workers_joined)
        metrics.counter(
            "elasticity_workers_lost_total", help="workers lost to failures"
        ).inc(self.workers_lost)
        metrics.counter(
            "elasticity_workers_retired_total", help="workers drained by scale-down"
        ).inc(self.workers_retired)
        metrics.counter(
            "elasticity_join_transfer_units_total",
            help="state units shipped to joining workers",
        ).inc(self.join_transfer_units)
        metrics.counter(
            "elasticity_subgraphs_recovered_total",
            help="subgraphs re-hosted by failover/retire/join surgery",
        ).inc(self.subgraphs_recovered)
        metrics.counter(
            "elasticity_retried_queries_total",
            help="queries re-routed off dead workers",
        ).inc(self.retried_queries)
        metrics.counter(
            "elasticity_dropped_queries_total", help="queries lost to faults"
        ).inc(self.dropped_queries)


class Rebalancer:
    """Rolling load aggregation plus the skew trigger, owned by a topology.

    The topology calls :meth:`observe` once per completed micro-batch with
    the batch-scoped cluster counters; the rebalancer folds the batch's
    per-subgraph charges into its rolling loads (applying the configured
    decay) and :meth:`maybe_plan` answers whether the skew warrants a
    migration.  The rolling loads survive migrations — load follows the
    subgraph, not the worker — so a freshly rebalanced cluster immediately
    re-scores below threshold instead of thrashing.
    """

    def __init__(self, config: RebalanceConfig) -> None:
        self.config = config
        self._loads: Dict[int, float] = {}
        self._batches_observed = 0
        self._batches_since_check = 0
        #: Completed migrations (plans executed by the owning topology).
        self.rebalances = 0
        #: Total subgraphs moved across all migrations.
        self.subgraphs_migrated = 0
        #: Cumulative state-transfer communication (vertex units) charged
        #: by executed migrations.  Kept here because the per-batch cluster
        #: counters are reset between batches, which would otherwise erase
        #: the migration's cost from every report.
        self.transfer_units = 0

    @property
    def loads(self) -> Dict[int, float]:
        """Copy of the rolling per-subgraph loads."""
        return dict(self._loads)

    @property
    def batches_observed(self) -> int:
        """Micro-batches folded into the rolling loads so far."""
        return self._batches_observed

    def observe(self, cluster, placement: Placement) -> LoadReport:
        """Fold one batch's cluster counters into the rolling loads."""
        batch = LoadReport.collect(cluster, placement, self.config.metric)
        self.observe_loads(batch.subgraph_load, batch=True)
        return batch

    def observe_loads(
        self, loads: Mapping[int, float], *, batch: bool = False
    ) -> None:
        """Fold raw per-subgraph loads into the rolling profile.

        ``batch=True`` marks a completed query micro-batch: the rolling
        decay is applied first and the cadence counters advance.  With
        ``batch=False`` the loads are folded in as-is — used for
        maintenance (weight-update) charges, which arrive between batches
        and would otherwise be erased by the per-batch metric reset before
        any :meth:`observe` could see them.
        """
        if batch and self.config.decay < 1.0:
            for subgraph_id in list(self._loads):
                self._loads[subgraph_id] *= self.config.decay
        for subgraph_id, amount in loads.items():
            if amount:
                self._loads[subgraph_id] = self._loads.get(subgraph_id, 0.0) + amount
        if batch:
            self._batches_observed += 1
            self._batches_since_check += 1

    def load_report(
        self, placement: Placement, workers: Optional[Sequence[int]] = None
    ) -> LoadReport:
        """The rolling loads rolled up under ``placement``."""
        return LoadReport.from_loads(
            self._loads, placement, self.config.metric, workers=workers
        )

    def check_due(self) -> bool:
        """Whether the automatic cadence says to test the trigger now."""
        if self.config.check_every == 0:
            return False
        return (
            self._batches_observed >= self.config.min_batches
            and self._batches_since_check >= self.config.check_every
        )

    def maybe_plan(
        self,
        placement: Placement,
        workers: Optional[Sequence[int]] = None,
        force: bool = False,
        baseline: Optional[Mapping[int, float]] = None,
    ) -> Optional[MigrationPlan]:
        """Plan a migration if the rolling skew crosses the threshold."""
        self._batches_since_check = 0
        if not force and self._batches_observed < self.config.min_batches:
            return None
        return plan_rebalance(
            self.load_report(placement, workers=workers),
            placement,
            threshold=self.config.threshold,
            force=force,
            baseline=baseline,
        )

    def record_executed(self, plan: MigrationPlan, transfer_units: int = 0) -> None:
        """Bump the counters after the owning topology executed ``plan``."""
        self.rebalances += 1
        self.subgraphs_migrated += len(plan.moves)
        self.transfer_units += transfer_units

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Rebalancer metric={self.config.metric} "
            f"threshold={self.config.threshold} "
            f"rebalances={self.rebalances}>"
        )

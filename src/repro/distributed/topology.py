"""Topology assembly: wiring spouts and bolts onto a simulated cluster.

:class:`StormTopology` builds the deployment of Figure 14: one EntranceSpout
on the master, one SubgraphBolt per worker (owning a load-balanced share of
the subgraphs and their first-level DTLP indexes), and one QueryBolt per
worker (each holding a replica of the skeleton graph).  The topology exposes
the two external operations of the system — submitting weight updates and
submitting KSP queries — plus the cost metrics the benchmarks read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..core.dtlp import DTLP
from ..core.ksp_dg import validate_kernel
from ..graph.errors import ClusterError
from ..graph.graph import WeightUpdate
from ..workloads.queries import KSPQuery
from .bolts import EntranceSpout, QueryBolt, QueryBoltResult, SubgraphBolt
from .cluster import SimulatedCluster

__all__ = ["TopologyReport", "StormTopology"]


@dataclass
class TopologyReport:
    """Aggregate result of running a query batch on the topology.

    Attributes
    ----------
    results:
        Per-query results in submission order.
    makespan_seconds:
        Simulated parallel completion time (max busy time over nodes).
    total_compute_seconds:
        Total single-core computation across the cluster.
    communication_units:
        Total vertices transferred between distinct nodes.
    load_balance:
        The CPU/memory spread report of the cluster.
    """

    results: List[QueryBoltResult] = field(default_factory=list)
    makespan_seconds: float = 0.0
    total_compute_seconds: float = 0.0
    communication_units: int = 0
    load_balance: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_iterations(self) -> float:
        """Average number of KSP-DG iterations per query."""
        if not self.results:
            return 0.0
        return sum(result.iterations for result in self.results) / len(self.results)


class StormTopology:
    """The simulated Storm deployment of KSP-DG.

    Parameters
    ----------
    dtlp:
        A built DTLP index over the dynamic graph.
    num_workers:
        Number of worker servers (the paper's ``Ns``).
    query_bolts_per_worker:
        How many QueryBolts to place on each worker; the paper deploys "one
        or more", and one is sufficient for the simulation because a single
        QueryBolt object can process any number of queries.

    Examples
    --------
    >>> from repro.graph import road_network
    >>> from repro.core import DTLP, DTLPConfig
    >>> from repro.distributed import StormTopology
    >>> from repro.workloads import QueryGenerator
    >>> graph = road_network(8, 8, seed=5)
    >>> dtlp = DTLP(graph, DTLPConfig(z=12, xi=3)).build()
    >>> topology = StormTopology(dtlp, num_workers=4)
    >>> queries = QueryGenerator(graph, seed=1).generate(5, k=2)
    >>> report = topology.run_queries(queries)
    >>> len(report.results)
    5
    """

    def __init__(
        self,
        dtlp: DTLP,
        num_workers: int = 4,
        query_bolts_per_worker: int = 1,
        kernel: str = "snapshot",
    ) -> None:
        if not dtlp.built:
            raise ClusterError("the DTLP index must be built before deploying a topology")
        if query_bolts_per_worker < 1:
            raise ClusterError("query_bolts_per_worker must be at least 1")
        self._dtlp = dtlp
        self._kernel = validate_kernel(kernel)
        self._cluster = SimulatedCluster(num_workers)
        partition = dtlp.partition

        # Balanced placement of subgraphs onto workers by vertex count.
        loads = {
            subgraph.subgraph_id: float(subgraph.num_vertices)
            for subgraph in partition.subgraphs
        }
        assignment = self._cluster.assign_balanced(loads)
        subgraphs_by_worker: Dict[int, List[int]] = {
            worker_id: [] for worker_id in range(num_workers)
        }
        for subgraph_id, worker_id in assignment.items():
            subgraphs_by_worker[worker_id].append(subgraph_id)

        self._subgraph_bolts: List[SubgraphBolt] = []
        for worker_id, subgraph_ids in subgraphs_by_worker.items():
            bolt = SubgraphBolt(
                name=f"subgraph-bolt-{worker_id}",
                worker_id=worker_id,
                cluster=self._cluster,
                dtlp=dtlp,
                subgraph_ids=subgraph_ids,
                kernel=self._kernel,
            )
            self._subgraph_bolts.append(bolt)

        self._query_bolts: List[QueryBolt] = []
        for worker_id in range(num_workers):
            for replica in range(query_bolts_per_worker):
                bolt = QueryBolt(
                    name=f"query-bolt-{worker_id}-{replica}",
                    worker_id=worker_id,
                    cluster=self._cluster,
                    dtlp=dtlp,
                    subgraph_bolts=self._subgraph_bolts,
                    kernel=self._kernel,
                )
                self._query_bolts.append(bolt)

        self._spout = EntranceSpout(
            cluster=self._cluster,
            dtlp=dtlp,
            subgraph_bolts=self._subgraph_bolts,
            query_bolts=self._query_bolts,
        )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def cluster(self) -> SimulatedCluster:
        """The simulated cluster hosting the topology."""
        return self._cluster

    @property
    def dtlp(self) -> DTLP:
        """The DTLP index served by the topology."""
        return self._dtlp

    @property
    def kernel(self) -> str:
        """Compute kernel used by the bolts (``"snapshot"`` or ``"dict"``)."""
        return self._kernel

    @property
    def subgraph_bolts(self) -> Sequence[SubgraphBolt]:
        """The SubgraphBolt components."""
        return tuple(self._subgraph_bolts)

    @property
    def query_bolts(self) -> Sequence[QueryBolt]:
        """The QueryBolt components."""
        return tuple(self._query_bolts)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def submit_weight_updates(self, updates: Sequence[WeightUpdate]) -> None:
        """Route one batch of weight updates through the topology."""
        self._spout.submit_weight_updates(updates)

    def fail_worker(self, worker_id: int) -> int:
        """Simulate the failure of one worker and reassign its subgraphs.

        Storm restarts failed executors on the remaining workers; because
        every worker already holds a replica of the skeleton graph and the
        subgraph adjacency lists live in the shared graph store, recovery
        amounts to re-hosting the failed worker's SubgraphBolts (and their
        first-level indexes) elsewhere.  The failed worker's QueryBolts stop
        receiving new queries.

        Returns the number of subgraphs that were migrated.  Raises
        :class:`~repro.graph.errors.ClusterError` when the id is unknown or
        when it is the only worker left.
        """
        alive = [b.worker_id for b in self._subgraph_bolts if b.worker_id != worker_id]
        if worker_id < 0 or worker_id >= self._cluster.num_workers:
            raise ClusterError(f"no worker with id {worker_id}")
        if not alive:
            raise ClusterError("cannot fail the only remaining worker")

        migrated = 0
        failed_bolts = [b for b in self._subgraph_bolts if b.worker_id == worker_id]
        surviving_bolts = [b for b in self._subgraph_bolts if b.worker_id != worker_id]
        for bolt in failed_bolts:
            for subgraph_id in sorted(bolt.subgraph_ids):
                target = min(surviving_bolts, key=lambda b: len(b.subgraph_ids))
                target.subgraph_ids.add(subgraph_id)
                self._cluster.worker(target.worker_id).charge_memory(
                    self._dtlp.subgraph_index(subgraph_id).memory_estimate_bytes()
                )
                migrated += 1
            bolt.subgraph_ids.clear()
        self._subgraph_bolts = surviving_bolts
        self._query_bolts = [b for b in self._query_bolts if b.worker_id != worker_id]
        for query_bolt in self._query_bolts:
            query_bolt.set_subgraph_bolts(self._subgraph_bolts)
        if not self._query_bolts:
            # Always keep at least one QueryBolt alive on a surviving worker.
            survivor = surviving_bolts[0].worker_id
            self._query_bolts = [
                QueryBolt(
                    name=f"query-bolt-{survivor}-recovered",
                    worker_id=survivor,
                    cluster=self._cluster,
                    dtlp=self._dtlp,
                    subgraph_bolts=self._subgraph_bolts,
                    kernel=self._kernel,
                )
            ]
        # Rewire the spout with the surviving components.
        self._spout = EntranceSpout(
            cluster=self._cluster,
            dtlp=self._dtlp,
            subgraph_bolts=self._subgraph_bolts,
            query_bolts=self._query_bolts,
        )
        return migrated

    def run_queries(self, queries: Sequence[KSPQuery], reset_metrics: bool = True) -> TopologyReport:
        """Process a batch of queries and return the aggregate report.

        Parameters
        ----------
        queries:
            The batch of KSP queries.
        reset_metrics:
            When ``True`` (default) the cluster's time counters are reset
            before the batch so the report reflects only this batch.
        """
        if reset_metrics:
            self._cluster.reset_time()
        results = [self._spout.submit_query(query) for query in queries]
        report = TopologyReport(results=results)
        report.makespan_seconds = self._cluster.makespan_seconds()
        report.total_compute_seconds = self._cluster.total_compute_seconds()
        report.communication_units = self._cluster.total_communication_units()
        report.load_balance = self._cluster.load_balance_report()
        return report

"""Topology assembly: wiring spouts and bolts onto a simulated cluster.

:class:`StormTopology` builds the deployment of Figure 14: one EntranceSpout
on the master, one SubgraphBolt per worker (owning a load-balanced share of
the subgraphs and their first-level DTLP indexes), and one QueryBolt per
worker (each holding a replica of the skeleton graph).  The topology exposes
the two external operations of the system — submitting weight updates and
submitting KSP queries — plus the cost metrics the benchmarks read.

The topology separates two layers (``ARCHITECTURE.md``, "Placement vs.
Executor"):

* the **logical placement** (:class:`~repro.distributed.placement.Placement`)
  — subgraph→worker assignment, deterministic query routing and cost
  attribution, which define the paper's figures and are identical on every
  backend;
* the **physical executor** (:mod:`repro.exec`) — which OS resource runs
  each query.  ``executor="serial"`` is the reference; ``"thread"`` fans a
  batch over a thread pool against the shared index (each query charging a
  private cost ledger); ``"process"`` fans it over persistent worker
  processes holding resident :class:`~repro.distributed.runtime.TopologyReplica`
  state, shipping only weight-update deltas and query envelopes between
  rounds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.dtlp import DTLP
from ..core.ksp_dg import validate_heuristic_for_kernel, validate_kernel
from ..exec import Executor, ReplicaSet, resolve_executor
from ..graph.errors import ClusterError
from ..graph.graph import WeightUpdate
from ..obs.trace import Span, TraceSession
from ..workloads.queries import KSPQuery
from .autoscale import AutoscaleConfig, Autoscaler, resolve_autoscale
from .bolts import EntranceSpout, QueryBolt, QueryBoltResult, SubgraphBolt
from .cluster import ClusterAccountant, SimulatedCluster
from .placement import Placement
from .rebalance import (
    ElasticityStats,
    LoadReport,
    MigrationPlan,
    Move,
    RebalanceConfig,
    Rebalancer,
    apply_join,
    apply_moves,
    collect_subgraph_loads,
    plan_join,
    resolve_rebalance,
)
from .runtime import QueryEnvelope, TopologyBundle, build_topology_replica

__all__ = ["TopologyReport", "JoinReport", "StormTopology"]


@dataclass(frozen=True)
class JoinReport:
    """Outcome of one worker join (:meth:`StormTopology.add_worker`).

    Everything except ``seconds`` (measured surgery wall clock) is
    deterministic for a given topology history.
    """

    worker_id: int
    moves: Tuple[Move, ...]
    subgraphs_migrated: int
    #: Vertex units shipped to the joiner: peer state transfer, or the
    #: catch-up delta length when the join cold-started from the store.
    transfer_units: int
    catchup_updates: int
    from_store: bool
    imbalance_before: float
    imbalance_after: float
    seconds: float


@dataclass
class TopologyReport:
    """Aggregate result of running a query batch on the topology.

    Attributes
    ----------
    results:
        Per-query results in submission order.
    makespan_seconds:
        Simulated parallel completion time (max busy time over nodes).
    total_compute_seconds:
        Total single-core computation across the cluster.
    communication_units:
        Total vertices transferred between distinct nodes.
    load_balance:
        The CPU/memory spread report of the cluster.
    """

    results: List[QueryBoltResult] = field(default_factory=list)
    makespan_seconds: float = 0.0
    total_compute_seconds: float = 0.0
    communication_units: int = 0
    load_balance: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_iterations(self) -> float:
        """Average number of KSP-DG iterations per query."""
        if not self.results:
            return 0.0
        return sum(result.iterations for result in self.results) / len(self.results)


class StormTopology:
    """The simulated Storm deployment of KSP-DG.

    Parameters
    ----------
    dtlp:
        A built DTLP index over the dynamic graph.
    num_workers:
        Number of worker servers (the paper's ``Ns``).
    query_bolts_per_worker:
        How many QueryBolts to place on each worker; the paper deploys "one
        or more", and one is sufficient for the simulation because a single
        QueryBolt object can process any number of queries.
    executor:
        Physical execution backend for query batches: a backend name
        (``"serial"``, ``"thread"``, ``"process"``), a pre-built
        :class:`~repro.exec.base.Executor` to share, or ``None`` for the
        environment default (``$REPRO_EXECUTOR``, falling back to
        ``serial``).  The logical placement
        and cost attribution are identical on every backend; only the OS
        resources running the work differ.  Topologies built with the
        ``process`` backend should be :meth:`close`\\ d (or used as a
        context manager) to reap the worker processes.
    executor_workers:
        Degree of physical parallelism when ``executor`` is a name;
        defaults to ``num_workers`` so the physical pool mirrors the
        logical cluster.
    rebalance:
        Load-adaptive placement (see :mod:`repro.distributed.rebalance`):
        ``None``/``False`` keeps the deployment-time placement fixed (the
        paper's behaviour, and the default); ``True`` enables the skew
        trigger with defaults; a number sets the imbalance threshold; a
        :class:`~repro.distributed.rebalance.RebalanceConfig` sets
        everything.  When enabled the topology folds each completed
        batch's per-subgraph load telemetry into a rolling profile and —
        at the configured cadence — migrates subgraphs live to rebalance
        the observed (not estimated) load.  Paths and distances are
        placement-independent, so results stay bit-identical across a
        migration; the deterministic ``"tasks"`` metric keeps the
        migrations themselves identical on every execution backend.
    autoscale:
        Saturation-driven pool elasticity (see
        :mod:`repro.distributed.autoscale`): ``None`` (default) keeps the
        worker pool fixed; a number sets the high watermark (rolling tasks
        per worker per batch) above which :meth:`add_worker` runs and
        below a quarter of which the coldest worker is retired;
        ``"HIGH:LOW"`` or an
        :class:`~repro.distributed.autoscale.AutoscaleConfig` set
        everything.  Deterministic under the default ``"tasks"`` metric,
        like rebalancing.
    tracer:
        A :class:`~repro.obs.trace.TraceSession` to collect per-query span
        trees into (admission → route → bolt work items → kernel searches),
        or ``None`` (default) for no tracing.  Traced batches work on every
        backend: span trees build inside the executing thread/process and
        ride back on the query results.
    kernel_profiling:
        Per-query kernel search counters (settled/relaxed/pruned/heap)
        folded into ``cluster.metrics``.  ``None`` (default) follows the
        tracer — profiling turns on with tracing so traced spans carry
        kernel work; ``True``/``False`` force it independently.

    Examples
    --------
    >>> from repro.graph import road_network
    >>> from repro.core import DTLP, DTLPConfig
    >>> from repro.distributed import StormTopology
    >>> from repro.workloads import QueryGenerator
    >>> graph = road_network(8, 8, seed=5)
    >>> dtlp = DTLP(graph, DTLPConfig(z=12, xi=3)).build()
    >>> topology = StormTopology(dtlp, num_workers=4)
    >>> queries = QueryGenerator(graph, seed=1).generate(5, k=2)
    >>> report = topology.run_queries(queries)
    >>> len(report.results)
    5
    """

    def __init__(
        self,
        dtlp: DTLP,
        num_workers: int = 4,
        query_bolts_per_worker: int = 1,
        kernel: str = "snapshot",
        executor: Union[str, Executor, None] = None,
        executor_workers: Optional[int] = None,
        rebalance: Union[None, bool, float, str, RebalanceConfig] = None,
        autoscale: Union[None, bool, int, float, str, AutoscaleConfig] = None,
        heuristic: str = "none",
        pruning: bool = True,
        tracer: Optional[TraceSession] = None,
        kernel_profiling: Optional[bool] = None,
        store_path: Optional[str] = None,
    ) -> None:
        if not dtlp.built:
            raise ClusterError("the DTLP index must be built before deploying a topology")
        if query_bolts_per_worker < 1:
            raise ClusterError("query_bolts_per_worker must be at least 1")
        self._dtlp = dtlp
        # Partition-store directory the index was saved to (or loaded
        # from).  When set, process replicas are spawned from the store's
        # partition files plus a catch-up weight delta instead of a pickled
        # graph + index (see TopologyBundle).
        self._store_path = str(store_path) if store_path is not None else None
        self._kernel = validate_kernel(kernel)
        self._heuristic = validate_heuristic_for_kernel(heuristic, self._kernel)
        self._pruning = pruning
        self._cluster = SimulatedCluster(num_workers)
        # All bolt/spout charges route through the accountant so that the
        # concurrent backends can divert each query into a private ledger;
        # with no ledger active it charges the shared cluster directly.
        self._account = ClusterAccountant(self._cluster)
        self._executor, self._owns_executor = resolve_executor(
            executor, workers=executor_workers or num_workers
        )
        # Global query submission counter driving deterministic round-robin
        # QueryBolt routing (identical on every backend and in replicas).
        self._route_counter = 0
        self._tracer = tracer
        # Whether queries run under span tracing.  True when the topology
        # owns a TraceSession; the serving layer instead calls
        # enable_query_traces() to get per-result span trees it collects
        # into its own session.
        self._trace_queries = tracer is not None
        self._kernel_profiling = kernel_profiling
        # Process-backend replicas, spawned lazily on first batch and kept
        # current via weight-update deltas between batches.
        self._replica_set = ReplicaSet(
            self._executor, build_topology_replica, dtlp.graph
        )

        # Balanced logical placement of subgraphs onto workers by vertex count.
        self._placement = Placement.balanced(dtlp.partition, num_workers)

        # Load-adaptive placement: rolling per-subgraph load aggregation and
        # the skew trigger (None when static placement was requested).
        config = resolve_rebalance(rebalance)
        self._rebalancer: Optional[Rebalancer] = (
            Rebalancer(config) if config is not None else None
        )

        # Pool elasticity: the saturation-driven scale trigger (None keeps
        # the pool size fixed) and the recovery SLO counters every join /
        # failure / retirement folds into.
        autoscale_config = resolve_autoscale(autoscale)
        self._autoscaler: Optional[Autoscaler] = (
            Autoscaler(autoscale_config) if autoscale_config is not None else None
        )
        self.elasticity = ElasticityStats()

        self._subgraph_bolts: List[SubgraphBolt] = []
        for worker_id in range(num_workers):
            bolt = SubgraphBolt(
                name=f"subgraph-bolt-{worker_id}",
                worker_id=worker_id,
                cluster=self._account,
                dtlp=dtlp,
                subgraph_ids=self._placement.subgraphs_on(worker_id),
                kernel=self._kernel,
                heuristic=self._heuristic,
                pruning=self._pruning,
            )
            self._subgraph_bolts.append(bolt)

        self._query_bolts: List[QueryBolt] = []
        for worker_id in range(num_workers):
            for replica in range(query_bolts_per_worker):
                bolt = QueryBolt(
                    name=f"query-bolt-{worker_id}-{replica}",
                    worker_id=worker_id,
                    cluster=self._account,
                    dtlp=dtlp,
                    subgraph_bolts=self._subgraph_bolts,
                    kernel=self._kernel,
                    heuristic=self._heuristic,
                    pruning=self._pruning,
                )
                self._query_bolts.append(bolt)

        self._spout = EntranceSpout(
            cluster=self._account,
            dtlp=dtlp,
            subgraph_bolts=self._subgraph_bolts,
            query_bolts=self._query_bolts,
        )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def cluster(self) -> SimulatedCluster:
        """The simulated cluster hosting the topology."""
        return self._cluster

    @property
    def dtlp(self) -> DTLP:
        """The DTLP index served by the topology."""
        return self._dtlp

    @property
    def kernel(self) -> str:
        """Compute kernel used by the bolts (``"snapshot"`` or ``"dict"``)."""
        return self._kernel

    @property
    def heuristic(self) -> str:
        """Lower-bound heuristic pruning the bolts' searches (``"none"`` off)."""
        return self._heuristic

    @property
    def pruning(self) -> bool:
        """Whether bound pruning and cross-query reuse are active."""
        return self._pruning

    @property
    def placement(self) -> Placement:
        """The logical subgraph→worker placement."""
        return self._placement

    @property
    def executor(self) -> Executor:
        """The physical execution backend running query batches."""
        return self._executor

    @property
    def rebalancer(self) -> Optional[Rebalancer]:
        """The load-adaptive placement loop, or ``None`` (static placement)."""
        return self._rebalancer

    @property
    def autoscaler(self) -> Optional[Autoscaler]:
        """The saturation-driven scale loop, or ``None`` (fixed pool)."""
        return self._autoscaler

    @property
    def tracer(self) -> Optional[TraceSession]:
        """The owned span-trace session, or ``None``."""
        return self._tracer

    def enable_query_traces(self) -> None:
        """Run queries under tracing without owning a session.

        Each :class:`~repro.distributed.bolts.QueryBoltResult` then carries
        its span tree on ``result.trace``; the caller (the serving layer)
        grafts the trees into its own :class:`~repro.obs.trace.TraceSession`.
        """
        self._trace_queries = True

    def _observability_flags(self) -> Tuple[bool, bool]:
        """(trace, profile) switches for the next batch."""
        trace = self._trace_queries
        profile = self._kernel_profiling if self._kernel_profiling is not None else trace
        return trace, profile

    @property
    def subgraph_bolts(self) -> Sequence[SubgraphBolt]:
        """The SubgraphBolt components."""
        return tuple(self._subgraph_bolts)

    @property
    def query_bolts(self) -> Sequence[QueryBolt]:
        """The QueryBolt components."""
        return tuple(self._query_bolts)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def submit_weight_updates(self, updates: Sequence[WeightUpdate]) -> None:
        """Route one batch of weight updates through the topology.

        With rebalancing enabled, the per-subgraph maintenance charges are
        folded into the rolling load profile immediately: they land on the
        cluster *between* batches, where the next batch's metric reset
        would erase them before the post-batch ``observe`` ran — and
        update-driven hotspots (weight churn concentrated on a few
        subgraphs) are exactly the skew the paper's scenario produces.
        """
        if self._rebalancer is None:
            self._spout.submit_weight_updates(updates)
            return
        metric = self._rebalancer.config.metric
        before = collect_subgraph_loads(self._cluster, metric)
        self._spout.submit_weight_updates(updates)
        after = collect_subgraph_loads(self._cluster, metric)
        delta = {
            subgraph_id: amount - before.get(subgraph_id, 0.0)
            for subgraph_id, amount in after.items()
            if amount - before.get(subgraph_id, 0.0) > 0.0
        }
        self._rebalancer.observe_loads(delta)

    def fail_worker(self, worker_id: int) -> int:
        """Simulate the failure of one worker and reassign its subgraphs.

        Storm restarts failed executors on the remaining workers; because
        every worker already holds a replica of the skeleton graph and the
        subgraph adjacency lists live in the shared graph store, recovery
        amounts to re-hosting the failed worker's SubgraphBolts (and their
        first-level indexes) elsewhere.  The failed worker's QueryBolts stop
        receiving new queries.

        Recovery reuses the live migration path
        (:func:`~repro.distributed.rebalance.apply_moves` with
        ``transfer_state=False`` — the dead worker cannot ship state, so
        survivors rebuild the indexes from the shared graph store and only
        memory is charged on the gainers).  On the process backend the
        resident replicas perform the identical surgery in place via one
        broadcast instead of being discarded and respawned.

        Returns the number of subgraphs that were migrated.  Raises
        :class:`~repro.graph.errors.ClusterError` when the id is unknown or
        when it is the only worker left.
        """
        started = time.perf_counter()
        alive = [b.worker_id for b in self._subgraph_bolts if b.worker_id != worker_id]
        if worker_id < 0 or worker_id >= self._cluster.num_workers:
            raise ClusterError(f"no worker with id {worker_id}")
        if not alive:
            raise ClusterError("cannot fail the only remaining worker")

        # Greedy re-hosting, least-loaded survivor first (subgraph-count
        # load, the seed policy) — expressed as an explicit move list so
        # master and process replicas execute the same plan.
        failed_bolts = [b for b in self._subgraph_bolts if b.worker_id == worker_id]
        surviving_bolts = [b for b in self._subgraph_bolts if b.worker_id != worker_id]
        sizes = {bolt.worker_id: len(bolt.subgraph_ids) for bolt in surviving_bolts}
        moves: List[Move] = []
        for bolt in failed_bolts:
            for subgraph_id in sorted(bolt.subgraph_ids):
                target = min(surviving_bolts, key=lambda b: sizes[b.worker_id])
                moves.append((subgraph_id, worker_id, target.worker_id))
                sizes[target.worker_id] += 1

        # apply_moves discards every moved id from its failed source bolt,
        # so the failed bolts end up empty without further surgery.
        migrated = apply_moves(
            moves, self._subgraph_bolts, self._account, self._dtlp,
            transfer_state=False,
        )
        self._subgraph_bolts = surviving_bolts
        self._query_bolts = [b for b in self._query_bolts if b.worker_id != worker_id]
        for query_bolt in self._query_bolts:
            query_bolt.set_subgraph_bolts(self._subgraph_bolts)
        if not self._query_bolts:
            # Always keep at least one QueryBolt alive on a surviving worker.
            survivor = surviving_bolts[0].worker_id
            self._query_bolts = [
                QueryBolt(
                    name=f"query-bolt-{survivor}-recovered",
                    worker_id=survivor,
                    cluster=self._account,
                    dtlp=self._dtlp,
                    subgraph_bolts=self._subgraph_bolts,
                    kernel=self._kernel,
                    heuristic=self._heuristic,
                    pruning=self._pruning,
                )
            ]
        self._rebuild_spout()
        # The logical placement changed: refresh it from the live bolts and
        # bring any resident process replicas along with one broadcast of
        # the same failure plan (instead of a full respawn).
        self._placement = Placement(
            self._cluster.num_workers,
            {
                subgraph_id: bolt.worker_id
                for bolt in self._subgraph_bolts
                for subgraph_id in bolt.subgraph_ids
            },
        )
        self._replica_set.broadcast("fail_worker", worker_id, moves)
        self.elasticity.workers_lost += 1
        self.elasticity.subgraphs_recovered += migrated
        self.elasticity.recovery_seconds += time.perf_counter() - started
        return migrated

    # ------------------------------------------------------------------
    # elasticity: scale-up and scale-down
    # ------------------------------------------------------------------
    def add_worker(self) -> JoinReport:
        """Grow the pool by one worker and migrate load onto it, live.

        The inverse of :meth:`fail_worker`: a fresh worker (next dense id)
        gets an empty SubgraphBolt plus a QueryBolt, and the join planner
        (:func:`~repro.distributed.rebalance.plan_join`) steals subgraphs
        from the hottest workers onto it — weighted by the rebalancer's
        rolling observed loads when available, by vertex counts otherwise,
        always deterministically.  Without a partition store the stolen
        subgraphs' state ships from their previous hosts (peer transfer in
        vertex units); with one (:mod:`repro.store`) the joiner cold-starts
        from the partition files and only the catch-up weight delta since
        the store was saved crosses the wire — O(load), the PR-8 path.

        Resident process replicas mirror the identical surgery via one
        ``add_worker`` broadcast (bolt construction order and the shipped
        move list match the master's exactly), so routing and the
        deterministic counters stay bit-identical across the join on every
        backend.
        """
        started = time.perf_counter()
        worker_id = self._cluster.add_worker()
        bolt = SubgraphBolt(
            name=f"subgraph-bolt-{worker_id}",
            worker_id=worker_id,
            cluster=self._account,
            dtlp=self._dtlp,
            subgraph_ids=(),
            kernel=self._kernel,
            heuristic=self._heuristic,
            pruning=self._pruning,
        )
        self._subgraph_bolts.append(bolt)
        self._query_bolts.append(
            QueryBolt(
                name=f"query-bolt-{worker_id}-0",
                worker_id=worker_id,
                cluster=self._account,
                dtlp=self._dtlp,
                subgraph_bolts=self._subgraph_bolts,
                kernel=self._kernel,
                heuristic=self._heuristic,
                pruning=self._pruning,
            )
        )
        for query_bolt in self._query_bolts:
            query_bolt.set_subgraph_bolts(self._subgraph_bolts)

        # Store-backed cold start: the joiner loads partition files from
        # disk and replays only the weight delta accumulated since the
        # store was saved.  A store that no longer matches the live graph
        # falls back to peer state transfer, mirroring _make_bundle.
        from_store = False
        catchup_updates = 0
        if self._store_path is not None:
            from ..store.partition_store import PartitionStore, StoreError

            try:
                store = PartitionStore(self._store_path)
                catchup_updates = len(store.stale_updates(self._dtlp.graph))
                from_store = True
            except StoreError:
                from_store = False
                catchup_updates = 0

        plan = plan_join(
            self._join_load_report(), self._grown_placement(), worker_id
        )
        moves: Tuple[Move, ...] = plan.moves if plan is not None else ()
        migrated = apply_join(
            moves, self._subgraph_bolts, self._account, self._dtlp,
            from_store=from_store,
            catchup_updates=catchup_updates,
        )
        transfer_units = (
            catchup_updates
            if from_store
            else sum(
                self._dtlp.partition.subgraph(subgraph_id).num_vertices
                for subgraph_id, _, _ in moves
            )
        )
        self._rebuild_spout()
        self._refresh_placement()
        self._replica_set.broadcast(
            "add_worker", worker_id, list(moves), from_store, catchup_updates
        )
        seconds = time.perf_counter() - started
        self.elasticity.workers_joined += 1
        self.elasticity.subgraphs_recovered += migrated
        self.elasticity.join_transfer_units += transfer_units
        self.elasticity.recovery_seconds += seconds
        return JoinReport(
            worker_id=worker_id,
            moves=moves,
            subgraphs_migrated=migrated,
            transfer_units=transfer_units,
            catchup_updates=catchup_updates,
            from_store=from_store,
            imbalance_before=plan.imbalance_before if plan is not None else 1.0,
            imbalance_after=plan.imbalance_after if plan is not None else 1.0,
            seconds=seconds,
        )

    def retire_worker(self, worker_id: Optional[int] = None) -> int:
        """Drain one worker gracefully and shrink the serving pool.

        The scale-down half of elasticity: unlike :meth:`fail_worker` the
        retiree is alive, so its subgraphs *ship their state* to the
        survivors (peer transfer, ``transfer_state=True``) instead of
        being rebuilt.  ``worker_id`` defaults to the coldest alive worker
        under the rolling observed loads (highest id on ties, so recent
        joiners retire first).  Returns the number of subgraphs migrated
        off the retiree.
        """
        started = time.perf_counter()
        alive = self._alive_workers()
        if len(alive) <= 1:
            raise ClusterError("cannot retire the only remaining worker")
        weights = self._join_weights()
        load = LoadReport.from_loads(
            weights, self._grown_placement(), self._load_metric(), workers=alive
        )
        if worker_id is None:
            worker_id = min(
                alive, key=lambda w: (load.worker_load.get(w, 0.0), -w)
            )
        elif worker_id not in alive:
            raise ClusterError(f"no alive worker with id {worker_id}")

        retiring = [b for b in self._subgraph_bolts if b.worker_id == worker_id]
        survivors = [b for b in self._subgraph_bolts if b.worker_id != worker_id]
        sizes = {
            bolt.worker_id: load.worker_load.get(bolt.worker_id, 0.0)
            for bolt in survivors
        }
        moves: List[Move] = []
        for bolt in retiring:
            for subgraph_id in sorted(bolt.subgraph_ids):
                target = min(survivors, key=lambda b: (sizes[b.worker_id], b.worker_id))
                moves.append((subgraph_id, worker_id, target.worker_id))
                sizes[target.worker_id] += weights.get(subgraph_id, 0.0)
        migrated = apply_moves(
            moves, self._subgraph_bolts, self._account, self._dtlp,
            transfer_state=True,
        )
        self._subgraph_bolts = survivors
        self._query_bolts = [b for b in self._query_bolts if b.worker_id != worker_id]
        for query_bolt in self._query_bolts:
            query_bolt.set_subgraph_bolts(self._subgraph_bolts)
        self._rebuild_spout()
        self._refresh_placement()
        self._replica_set.broadcast("retire_worker", worker_id, moves)
        self.elasticity.workers_retired += 1
        self.elasticity.subgraphs_recovered += migrated
        self.elasticity.recovery_seconds += time.perf_counter() - started
        return migrated

    def _load_metric(self) -> str:
        """Load metric steering join/retire plans (rebalancer's, or tasks)."""
        if self._rebalancer is not None:
            return self._rebalancer.config.metric
        if self._autoscaler is not None:
            return self._autoscaler.config.metric
        return "tasks"

    def _join_weights(self) -> Dict[int, float]:
        """Per-subgraph weights for join/retire planning.

        The rebalancer's rolling observed loads with the vertex-count
        baseline tiebreak when observations exist; plain vertex counts
        otherwise (cold start — the deployment-time estimate).
        """
        baseline = {
            subgraph.subgraph_id: float(subgraph.num_vertices)
            for subgraph in self._dtlp.partition.subgraphs
        }
        observed = self._rebalancer.loads if self._rebalancer is not None else {}
        total = sum(observed.values())
        if total <= 0.0:
            return baseline
        baseline_total = sum(baseline.values()) or 1.0
        tiebreak_scale = total * 1e-3 / baseline_total
        return {
            sid: observed.get(sid, 0.0) + size * tiebreak_scale
            for sid, size in baseline.items()
        }

    def _grown_placement(self) -> Placement:
        """The live assignment sized to the (possibly grown) cluster."""
        return Placement(
            self._cluster.num_workers,
            {
                subgraph_id: bolt.worker_id
                for bolt in self._subgraph_bolts
                for subgraph_id in bolt.subgraph_ids
            },
        )

    def _join_load_report(self) -> LoadReport:
        """Load report over the alive pool (joiner included, at zero)."""
        return LoadReport.from_loads(
            self._join_weights(),
            self._grown_placement(),
            self._load_metric(),
            workers=self._alive_workers(),
        )

    def _refresh_placement(self) -> None:
        """Rebuild the logical placement from the live bolt assignment."""
        self._placement = self._grown_placement()

    # ------------------------------------------------------------------
    # load-adaptive placement
    # ------------------------------------------------------------------
    def _alive_workers(self) -> List[int]:
        """Worker ids currently hosting SubgraphBolts (failures excluded)."""
        return sorted({bolt.worker_id for bolt in self._subgraph_bolts})

    def alive_workers(self) -> List[int]:
        """Worker ids currently hosting SubgraphBolts (failures excluded)."""
        return self._alive_workers()

    @property
    def queries_routed(self) -> int:
        """Total queries submitted so far — the deterministic round-robin
        routing cursor (identical on every backend and in replicas)."""
        return self._route_counter

    def load_report(self, metric: str = "tasks") -> LoadReport:
        """Per-subgraph/per-worker load observed since the last metric reset.

        Batch-scoped by default (``run_queries`` resets the cluster's time
        counters before each batch); the *rolling* profile across batches
        lives on :attr:`rebalancer` when rebalancing is enabled.
        """
        report = LoadReport.collect(
            self._cluster, self._placement, metric, workers=self._alive_workers()
        )
        return replace(
            report,
            workers_joined=self.elasticity.workers_joined,
            workers_lost=self.elasticity.workers_lost,
        )

    def maybe_rebalance(self, force: bool = False) -> Optional[MigrationPlan]:
        """Test the skew trigger and execute a live migration if it fires.

        Requires the topology to have been built with ``rebalance=...``.
        Called automatically after each ``check_every``-th batch; callers
        may also invoke it directly (e.g. the serving layer's maintenance
        loop, or ``force=True`` to rebalance regardless of the threshold).
        Returns the executed plan, or ``None`` when no migration happened.
        """
        if self._rebalancer is None:
            raise ClusterError(
                "topology was built with a static placement; pass "
                "rebalance=... to StormTopology to enable load-adaptive "
                "placement"
            )
        plan = self._rebalancer.maybe_plan(
            self._placement,
            workers=self._alive_workers(),
            force=force,
            # Vertex counts — the deployment-time estimate — spread cold
            # (unobserved) subgraphs by size instead of piling them onto
            # greedy's first tie-break worker.
            baseline={
                subgraph.subgraph_id: float(subgraph.num_vertices)
                for subgraph in self._dtlp.partition.subgraphs
            },
        )
        if plan is None:
            return None
        self._execute_migration(plan)
        # The transfer is charged to the live cluster, but the per-batch
        # metric reset erases it before the next report — the rebalancer
        # keeps the cumulative cost so reports can still surface it.
        self._rebalancer.record_executed(
            plan,
            transfer_units=sum(
                self._dtlp.partition.subgraph(subgraph_id).num_vertices
                for subgraph_id, _, _ in plan.moves
            ),
        )
        return plan

    def _execute_migration(self, plan: MigrationPlan) -> None:
        """Live-migrate subgraphs to the plan's placement, on every backend.

        Runs strictly *between* batches (the only time this is called), so
        there are no in-flight envelopes to drain — the synchronous batch
        protocol is the drain.  The master re-hosts the subgraph ids,
        re-attributes index memory and charges the state transfer as
        communication; resident process replicas perform the identical
        surgery via one ``migrate`` broadcast (the move list is the only
        payload — each replica already holds every subgraph's state).  The
        global ``route_index`` counter is untouched, so query routing —
        and with it the result stream — continues bit-identically across
        the swap.
        """
        apply_moves(
            plan.moves, self._subgraph_bolts, self._account, self._dtlp,
            transfer_state=True,
        )
        self._placement = plan.placement
        self._rebuild_spout()
        self._replica_set.broadcast("migrate", list(plan.moves))

    def _rebuild_spout(self) -> None:
        """Re-wire the EntranceSpout against the current bolt assignment."""
        self._spout = EntranceSpout(
            cluster=self._account,
            dtlp=self._dtlp,
            subgraph_bolts=self._subgraph_bolts,
            query_bolts=self._query_bolts,
        )

    def run_queries(self, queries: Sequence[KSPQuery], reset_metrics: bool = True) -> TopologyReport:
        """Process a batch of queries and return the aggregate report.

        The batch runs on the topology's execution backend; paths,
        distances and the deterministic cost counters (messages, transfer
        units, task counts) are identical on every backend.

        Parameters
        ----------
        queries:
            The batch of KSP queries.
        reset_metrics:
            When ``True`` (default) the cluster's time counters are reset
            before the batch so the report reflects only this batch.
        """
        if reset_metrics:
            self._cluster.reset_time()
        queries = list(queries)
        backend = self._executor.name
        base = self._route_counter
        trace, profile = self._observability_flags()
        if backend == "process" and queries:
            results = self._run_on_replicas(queries, trace, profile)
        elif backend == "thread" and len(queries) > 1:
            results = self._run_threaded(queries, trace, profile)
        elif trace or profile:
            results = [
                self._spout.submit_query_observed(
                    query, route_index=base + offset, trace=trace, profile=profile
                )
                for offset, query in enumerate(queries)
            ]
        else:
            results = [
                self._spout.submit_query(query, route_index=base + offset)
                for offset, query in enumerate(queries)
            ]
        self._route_counter += len(queries)
        if self._tracer is not None and queries:
            # The batch event records logical work only — no backend name,
            # no wall-clock — so exported traces stay byte-identical across
            # execution backends (the acceptance guarantee of repro.obs).
            self._tracer.add_event(
                Span("topology_batch", {"size": len(queries), "base_route": base})
            )
            for offset, result in enumerate(results):
                self._tracer.add_query(base + offset, getattr(result, "trace", None))
        report = TopologyReport(results=results)
        report.makespan_seconds = self._cluster.makespan_seconds()
        report.total_compute_seconds = self._cluster.total_compute_seconds()
        report.communication_units = self._cluster.total_communication_units()
        report.load_balance = self._cluster.load_balance_report()
        # Load-adaptive placement: fold this batch's per-subgraph telemetry
        # into the rolling profile, then fire the skew trigger if due.  The
        # migration (if any) runs strictly between batches — after this
        # report is frozen, before the next batch — so the swap never races
        # in-flight work and the report reflects the placement that served
        # it.  Only metric-reset batches observe (a reset_metrics=False
        # batch would double-count the preceding one).
        if self._rebalancer is not None and queries and reset_metrics:
            self._rebalancer.observe(self._cluster, self._placement)
            if self._rebalancer.check_due():
                self.maybe_rebalance()
        # Pool elasticity rides the same batch boundary: fold the batch's
        # saturation in, and run the join/retire surgery strictly between
        # batches — deterministic under the "tasks" metric, like the
        # rebalance trigger above.
        if self._autoscaler is not None and queries and reset_metrics:
            loads = collect_subgraph_loads(
                self._cluster, self._autoscaler.config.metric
            )
            alive = self._alive_workers()
            decision = self._autoscaler.observe(sum(loads.values()), len(alive))
            if decision == "up":
                self.add_worker()
                self._autoscaler.record_scaled("up")
            elif decision == "down" and len(alive) > 1:
                self.retire_worker()
                self._autoscaler.record_scaled("down")
        return report

    # ------------------------------------------------------------------
    # concurrent execution backends
    # ------------------------------------------------------------------
    def _sync_kernel_caches(self) -> None:
        """Bring every shared kernel snapshot current, serially.

        Run before fanning a batch over threads so that all snapshot
        accesses inside the batch are read-only (refreshes would otherwise
        race between tasks); see ``ARCHITECTURE.md``.
        """
        for bolt in self._subgraph_bolts:
            bolt.sync_kernel_caches()
        for query_bolt in self._query_bolts:
            query_bolt.sync_kernel_caches()

    def _run_threaded(
        self, queries: Sequence[KSPQuery], trace: bool = False, profile: bool = False
    ) -> List[QueryBoltResult]:
        """Fan a batch over the thread pool against the shared topology."""
        self._sync_kernel_caches()
        base = self._route_counter
        num_workers = self._cluster.num_workers
        observed = trace or profile

        def task(item: Tuple[int, KSPQuery]) -> Tuple[QueryBoltResult, SimulatedCluster]:
            offset, query = item
            ledger = SimulatedCluster(num_workers)
            self._account.activate(ledger)
            try:
                if observed:
                    result = self._spout.submit_query_observed(
                        query, route_index=base + offset, trace=trace, profile=profile
                    )
                else:
                    result = self._spout.submit_query(query, route_index=base + offset)
                return (result, ledger)
            finally:
                self._account.deactivate()

        results: List[QueryBoltResult] = []
        for result, ledger in self._executor.map(task, list(enumerate(queries))):
            self._cluster.absorb(ledger)
            results.append(result)
        return results

    def _make_bundle(self) -> TopologyBundle:
        """Capture the live topology state for replica construction.

        With a partition store attached, the bundle ships the store *path*
        and a catch-up weight delta instead of the pickled graph + index —
        each worker cold-starts from the partition files.  A store that no
        longer matches the live graph (e.g. overwritten on disk) falls back
        to the classic whole-state pickle rather than failing the spawn.
        """
        dtlp: Optional[DTLP] = self._dtlp
        store_path = None
        catchup: tuple = ()
        if self._store_path is not None:
            from ..store.partition_store import PartitionStore, StoreError

            try:
                store = PartitionStore(self._store_path)
                catchup = tuple(store.stale_updates(self._dtlp.graph))
                dtlp = None
                store_path = self._store_path
            except StoreError:
                dtlp = self._dtlp
                store_path = None
                catchup = ()
        return TopologyBundle(
            dtlp=dtlp,
            store_path=store_path,
            catchup=catchup,
            kernel=self._kernel,
            heuristic=self._heuristic,
            pruning=self._pruning,
            num_workers=self._cluster.num_workers,
            subgraph_bolts=[
                (bolt.name, bolt.worker_id, tuple(sorted(bolt.subgraph_ids)))
                for bolt in self._subgraph_bolts
            ],
            query_bolts=[
                (bolt.name, bolt.worker_id) for bolt in self._query_bolts
            ],
            graph_version=self._dtlp.graph.version,
        )

    def _run_on_replicas(
        self, queries: Sequence[KSPQuery], trace: bool = False, profile: bool = False
    ) -> List[QueryBoltResult]:
        """Shard a batch across the resident worker-process replicas.

        The :class:`~repro.exec.replicas.ReplicaSet` spawns the group on
        first use and ships the coalesced weight-update delta before every
        batch, so any number of maintenance rounds between two batches
        costs one broadcast.
        """
        group = self._replica_set.ensure(self._make_bundle)
        base = self._route_counter
        shards: Dict[int, List[QueryEnvelope]] = {}
        for offset, query in enumerate(queries):
            shards.setdefault(offset % group.num_slots, []).append(
                (offset, base + offset, query)
            )
        replies = group.call_each(
            [
                (slot, "run_queries", (envelopes, trace, profile))
                for slot, envelopes in shards.items()
            ]
        )
        tagged: List[Tuple[int, QueryBoltResult]] = []
        for chunk, ledger in replies:
            # One ledger per reply: absorption is purely additive, so the
            # replica pre-merges its chunk's charges instead of shipping a
            # ledger per query.
            self._cluster.absorb(ledger)
            tagged.extend(chunk)
        tagged.sort(key=lambda item: item[0])
        return [result for _, result in tagged]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release executor resources (idempotent).

        Closes the replica group and, when the topology created its own
        executor from a backend name, the executor itself.  A shared
        executor passed in by the caller is left running.
        """
        self._replica_set.discard()
        if self._owns_executor:
            self._executor.close()

    def __enter__(self) -> "StormTopology":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

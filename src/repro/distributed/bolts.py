"""Storm-style processing components: EntranceSpout, SubgraphBolt, QueryBolt.

Section 6.1 of the paper deploys KSP-DG on Apache Storm as a topology with
three component types.  The simulated runtime keeps the same decomposition:

* :class:`EntranceSpout` — runs on the master, receives edge-weight updates
  and incoming KSP queries, routes updates to the SubgraphBolt owning the
  affected subgraph and assigns each query to a QueryBolt.
* :class:`SubgraphBolt` — runs on a worker; owns one or more subgraphs and
  their first-level DTLP indexes; answers two kinds of requests: weight
  updates (index maintenance) and reference-path broadcasts (computes the
  partial k shortest paths for the adjacent vertex pairs it can serve).
* :class:`QueryBolt` — runs on a worker; holds a replica of the skeleton
  graph, computes reference paths, broadcasts them, merges the returned
  partial paths into candidate KSPs and applies the termination test.

Every piece of computation is timed with ``time.perf_counter`` and charged to
the hosting worker through the :class:`~repro.distributed.cluster.SimulatedCluster`,
and every inter-component message is charged as communication, so aggregate
metrics reproduce the cost analysis of Section 5.6.

Bolts compute on the kernel selected at topology construction (see
``ARCHITECTURE.md``): with the array-backed kernels (``"snapshot"`` and the
batch-native ``"fast"`` tier) each SubgraphBolt reads its subgraphs through
the DTLP's shared snapshot cache (persisted across micro-batches, refreshed
incrementally after ``apply_updates``) and each QueryBolt keeps a
version-keyed snapshot of its skeleton replica; ``"fast"`` additionally
routes large attachment one-to-many searches through the wavefront kernel
(distance-identical, tie-order free).

Bolts charge their work through an object with the
:class:`~repro.distributed.cluster.SimulatedCluster` interface — under
concurrent execution backends the topology hands them a
:class:`~repro.distributed.cluster.ClusterAccountant` that routes each
task's charges into a private ledger, keeping the accounting exact (see
``ARCHITECTURE.md``, "Placement vs. Executor").  During a concurrent batch
the bolts' shared kernel snapshots must not be refreshed mid-flight; the
topology calls :meth:`SubgraphBolt.sync_kernel_caches` /
:meth:`QueryBolt.sync_kernel_caches` once, serially, before fanning out, so
all snapshot accesses inside the batch are read-only.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..algorithms.yen import LazyYen, yen_k_shortest_paths
from ..core.dtlp import DTLP
from ..core.ksp_dg import (
    goal_directed_distance,
    validate_heuristic_for_kernel,
    validate_kernel,
)
from ..graph.errors import ClusterError, PathNotFoundError
from ..graph.graph import WeightUpdate
from ..graph.paths import Path, merge_paths
from ..kernel.heuristics import LandmarkLowerBounds
from ..kernel.snapshot import CSRSnapshot
from ..obs.profile import KernelCounters
from ..obs.profile import activate as activate_profiling
from ..obs.profile import deactivate as deactivate_profiling
from ..obs.trace import Span, begin_trace, end_trace, mark, pop_span, push_span
from ..workloads.queries import KSPQuery
from .cluster import SimulatedCluster

__all__ = ["EntranceSpout", "SubgraphBolt", "QueryBolt"]


class SubgraphBolt:
    """Worker component owning a set of subgraphs and their indexes."""

    def __init__(
        self,
        name: str,
        worker_id: int,
        cluster: SimulatedCluster,
        dtlp: DTLP,
        subgraph_ids: Sequence[int],
        kernel: str = "snapshot",
        heuristic: str = "none",
        pruning: bool = True,
    ) -> None:
        self.name = name
        self.worker_id = worker_id
        self._cluster = cluster
        self._dtlp = dtlp
        self._partition = dtlp.partition
        self._kernel = validate_kernel(kernel)
        self._heuristic = validate_heuristic_for_kernel(heuristic, self._kernel)
        self._pruning = pruning
        self.subgraph_ids: Set[int] = set(subgraph_ids)
        worker = cluster.worker(worker_id)
        worker.host(name)
        for subgraph_id in self.subgraph_ids:
            worker.charge_memory(
                dtlp.subgraph_index(subgraph_id).memory_estimate_bytes()
            )

    def _subgraph_view(self, subgraph_id: int):
        """The compute view of one owned subgraph under the selected kernel.

        Snapshots live in the shared DTLP cache, so they persist across
        micro-batches and are refreshed incrementally after
        ``apply_updates`` instead of being rebuilt per query.
        """
        if self._kernel != "dict":
            return self._dtlp.subgraph_snapshot(subgraph_id)
        return self._partition.subgraph(subgraph_id)

    def sync_kernel_caches(self) -> None:
        """Build/refresh the owned subgraphs' shared snapshots, serially.

        Called by the topology before a concurrent batch so that every
        snapshot is already current and all accesses during the batch are
        read-only (refresh would otherwise race between tasks).  With a
        heuristic mode active the per-subgraph lower-bound providers are
        warmed here too — landmark tables are expensive enough that two
        threads lazily building them for the same subgraph mid-batch would
        duplicate real work.
        """
        if self._kernel == "dict":
            return
        for subgraph_id in self.subgraph_ids:
            self._dtlp.subgraph_snapshot(subgraph_id)
            if self._pruning and self._heuristic != "none":
                self._dtlp.subgraph_lower_bounds(subgraph_id, self._heuristic)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def handle_weight_updates(self, subgraph_id: int, updates: Sequence[WeightUpdate]) -> None:
        """Apply weight updates to one of the owned subgraph indexes."""
        if subgraph_id not in self.subgraph_ids:
            raise ClusterError(
                f"{self.name} does not own subgraph {subgraph_id}"
            )
        started = time.perf_counter()
        self._dtlp.subgraph_index(subgraph_id).apply_updates(updates)
        elapsed = time.perf_counter() - started
        worker = self._cluster.worker(self.worker_id)
        worker.charge_compute(elapsed)
        worker.charge_subgraph(subgraph_id, elapsed)
        metrics = self._cluster.metrics
        metrics.counter("bolt_update_batches_total").inc()
        metrics.counter("bolt_updates_applied_total").inc(len(updates))

    # ------------------------------------------------------------------
    # query support
    # ------------------------------------------------------------------
    def partial_ksps_for_reference(
        self, reference_path: Path, k: int
    ) -> Dict[Tuple[int, int], List[Path]]:
        """Partial k shortest paths for the reference-path pairs this bolt serves.

        For every pair of adjacent vertices on the reference path, if any of
        the subgraphs owned by this bolt contains both vertices, Yen's
        algorithm is run inside those subgraphs and the best ``k`` results
        per pair are returned.

        With pruning enabled, per-(subgraph, pair, k) results are reused
        across queries and refinement rounds through the DTLP's weight-epoch
        memo, and fresh computations run with upper-bound pruning plus the
        configured lower-bound heuristic.  Reused results are bit-identical
        to recomputation, and every subgraph still receives exactly one
        ``charge_subgraph`` per served pair, so the deterministic load
        telemetry (``subgraph_tasks``) and message accounting stay identical
        on every execution backend regardless of memo warmth.
        """
        started = time.perf_counter()
        results: Dict[Tuple[int, int], List[Path]] = {}
        vertices = reference_path.vertices
        memo_hits = 0
        memo_misses = 0
        partials_span = push_span("partials", bolt=self.name)
        for index in range(len(vertices) - 1):
            pair = (vertices[index], vertices[index + 1])
            owners = set(self._partition.subgraphs_containing_pair(*pair))
            local_owners = owners & self.subgraph_ids
            if not local_owners:
                continue
            # The per-pair span aggregates across owning subgraphs: spans are
            # keyed to the deterministic reference-path pair order, never to
            # set iteration order.
            pair_span = push_span("pair", _kernel=True, u=pair[0], v=pair[1])
            pair_hits = 0
            collected: List[Path] = []
            for subgraph_id in local_owners:
                sub_started = time.perf_counter()
                try:
                    memo = (
                        self._dtlp.partial_memo_get(subgraph_id, pair, k)
                        if self._pruning
                        else None
                    )
                    if memo is not None:
                        pair_hits += 1
                        collected.extend(memo)
                        continue
                    subgraph = self._subgraph_view(subgraph_id)
                    heuristic = (
                        self._dtlp.subgraph_lower_bounds(subgraph_id, self._heuristic)
                        if self._pruning and isinstance(subgraph, CSRSnapshot)
                        else None
                    )
                    try:
                        paths = yen_k_shortest_paths(
                            subgraph, pair[0], pair[1], k,
                            prune=self._pruning, heuristic=heuristic,
                        )
                    except PathNotFoundError:
                        paths = []
                    if self._pruning:
                        self._dtlp.partial_memo_put(subgraph_id, pair, k, paths)
                    if not paths:
                        continue
                    collected.extend(paths)
                finally:
                    self._cluster.worker(self.worker_id).charge_subgraph(
                        subgraph_id, time.perf_counter() - sub_started
                    )
            memo_hits += pair_hits
            memo_misses += len(local_owners) - pair_hits
            if pair_span is not None:
                pair_span.args["memo_hits"] = pair_hits
                pair_span.args["computed"] = len(local_owners) - pair_hits
            pop_span(pair_span)
            if not collected:
                continue
            collected.sort()
            deduplicated: List[Path] = []
            seen: Set[Tuple[int, ...]] = set()
            for path in collected:
                if path.vertices in seen:
                    continue
                seen.add(path.vertices)
                deduplicated.append(path)
                if len(deduplicated) >= k:
                    break
            results[pair] = deduplicated
        if partials_span is not None:
            partials_span.args["pairs"] = len(results)
        pop_span(partials_span)
        self._cluster.worker(self.worker_id).charge_compute(time.perf_counter() - started)
        metrics = self._cluster.metrics
        metrics.counter("bolt_partial_pairs_total").inc(len(results))
        if memo_hits:
            metrics.counter("dtlp_memo_hits_total").inc(memo_hits)
        if memo_misses:
            metrics.counter("dtlp_memo_misses_total").inc(memo_misses)
        return results

    def attachment_bounds(self, vertex: int) -> Dict[int, float]:
        """Step-1 support: lower bounds from a non-boundary vertex.

        Computes, within every owned subgraph containing ``vertex``, the
        distances from the vertex to the subgraph's boundary vertices.
        """
        started = time.perf_counter()
        attach_span = push_span("attach", _kernel=True, bolt=self.name, vertex=vertex)
        bounds: Dict[int, float] = {}
        for subgraph_id in self.subgraph_ids:
            subgraph = self._partition.subgraph(subgraph_id)
            if vertex not in subgraph.vertices:
                continue
            sub_started = time.perf_counter()
            index = self._dtlp.subgraph_index(subgraph_id)
            view = (
                self._dtlp.subgraph_snapshot(subgraph_id)
                if self._kernel != "dict"
                else None
            )
            for boundary, distance in index.lower_bounds_from_vertex(
                vertex, view=view, fast=self._kernel == "fast"
            ).items():
                current = bounds.get(boundary)
                if current is None or distance < current:
                    bounds[boundary] = distance
            self._cluster.worker(self.worker_id).charge_subgraph(
                subgraph_id, time.perf_counter() - sub_started
            )
        if attach_span is not None:
            attach_span.args["boundaries"] = len(bounds)
        pop_span(attach_span)
        self._cluster.worker(self.worker_id).charge_compute(time.perf_counter() - started)
        self._cluster.metrics.counter("bolt_attachment_probes_total").inc()
        return bounds

    def direct_distance(self, source: int, target: int) -> Optional[float]:
        """Within-subgraph distance between two vertices sharing an owned subgraph.

        Distance-only probe: with a heuristic mode active it runs the
        goal-directed A* kernel (exact distances are tie-independent, so the
        f-ordered search cannot perturb results); otherwise the plain
        early-exit Dijkstra.
        """
        started = time.perf_counter()
        direct_span = push_span("direct", _kernel=True, bolt=self.name)
        best: Optional[float] = None
        for subgraph_id in self.subgraph_ids:
            subgraph = self._partition.subgraph(subgraph_id)
            if source not in subgraph.vertices or target not in subgraph.vertices:
                continue
            sub_started = time.perf_counter()
            value = goal_directed_distance(
                self._dtlp,
                subgraph_id,
                self._subgraph_view(subgraph_id),
                source,
                target,
                self._heuristic,
                self._pruning,
            )
            if value is not None and (best is None or value < best):
                best = value
            self._cluster.worker(self.worker_id).charge_subgraph(
                subgraph_id, time.perf_counter() - sub_started
            )
        if direct_span is not None:
            direct_span.args["found"] = best is not None
        pop_span(direct_span)
        self._cluster.worker(self.worker_id).charge_compute(time.perf_counter() - started)
        self._cluster.metrics.counter("bolt_direct_probes_total").inc()
        return best


class QueryBolt:
    """Worker component that owns queries end to end."""

    def __init__(
        self,
        name: str,
        worker_id: int,
        cluster: SimulatedCluster,
        dtlp: DTLP,
        subgraph_bolts: Sequence[SubgraphBolt],
        k_default: int = 2,
        kernel: str = "snapshot",
        heuristic: str = "none",
        pruning: bool = True,
    ) -> None:
        self.name = name
        self.worker_id = worker_id
        self._cluster = cluster
        self._dtlp = dtlp
        self._partition = dtlp.partition
        self._subgraph_bolts = list(subgraph_bolts)
        self._k_default = k_default
        self._kernel = validate_kernel(kernel)
        self._heuristic = validate_heuristic_for_kernel(heuristic, self._kernel)
        self._pruning = pruning
        worker = cluster.worker(worker_id)
        worker.host(name)
        worker.charge_memory(dtlp.skeleton_graph.memory_estimate_bytes())
        self.queries_processed = 0
        # Guards the counter above: concurrent backends may process several
        # queries routed to this bolt at once.
        self._counter_lock = threading.Lock()

    def set_subgraph_bolts(self, subgraph_bolts: Sequence[SubgraphBolt]) -> None:
        """Replace the set of SubgraphBolts this QueryBolt fans out to.

        Used by the topology when workers fail and their subgraphs are
        re-hosted on the survivors.
        """
        self._subgraph_bolts = list(subgraph_bolts)

    def sync_kernel_caches(self) -> None:
        """Build/refresh the shared skeleton-replica snapshot, serially.

        Called by the topology before a concurrent batch; afterwards the
        shared snapshot (hosted on the DTLP, one per process) is current
        for the batch's graph version, so :meth:`_skeleton_view` never
        mutates it mid-batch.  In landmark mode the shared landmark tables
        are warmed here too, so concurrent queries only ever read them.
        """
        if self._kernel != "dict":
            self._dtlp.skeleton_snapshot()
            if self._pruning and self._heuristic == "landmark":
                self._dtlp.skeleton_lower_bounds()

    # ------------------------------------------------------------------
    # query processing (Step 2 of Figure 14)
    # ------------------------------------------------------------------
    def process_query(
        self,
        query: KSPQuery,
        attachments: Optional[Dict[int, Dict[int, float]]] = None,
        direct_edge: Optional[float] = None,
    ) -> "QueryBoltResult":
        """Run the iterative KSP-DG loop for one query.

        Parameters
        ----------
        query:
            The KSP query.
        attachments:
            Step-1 output: skeleton attachments for non-boundary endpoints.
        direct_edge:
            Optional direct lower-bound edge weight between the endpoints
            when they share a subgraph and at least one is non-boundary.
        """
        worker = self._cluster.worker(self.worker_id)
        skeleton = self._dtlp.skeleton_graph
        started = time.perf_counter()
        if attachments:
            skeleton = skeleton.augmented(attachments)
            if direct_edge is not None and query.source != query.target:
                skeleton.update_edge_minimum(query.source, query.target, direct_edge)
        search_skeleton = (
            self._skeleton_view(skeleton) if self._kernel != "dict" else skeleton
        )
        skeleton_bounds = None
        if (
            self._pruning
            and self._heuristic == "landmark"
            and isinstance(search_skeleton, CSRSnapshot)
        ):
            skeleton_bounds = self._skeleton_bounds(search_skeleton)
        enumerator = LazyYen(
            search_skeleton, query.source, query.target, heuristic=skeleton_bounds
        )
        worker.charge_compute(time.perf_counter() - started)

        top_paths: List[Path] = []
        seen: Set[Tuple[int, ...]] = set()
        partial_cache: Dict[Tuple[int, int], List[Path]] = {}
        iterations = 0
        reference = self._next_reference(enumerator, worker)
        while reference is not None:
            iterations += 1
            iteration_span = push_span("iteration", index=iterations)
            try:
                # Broadcast the reference path to all SubgraphBolts (communication).
                for bolt in self._subgraph_bolts:
                    self._cluster.send(self.worker_id, bolt.worker_id, len(reference.vertices))
                mark(
                    "broadcast",
                    bolts=len(self._subgraph_bolts),
                    units=len(reference.vertices),
                )
                # Each SubgraphBolt computes the partial paths it can serve.
                pair_paths: Dict[Tuple[int, int], List[Path]] = {}
                for bolt in self._subgraph_bolts:
                    needed_pairs = self._pairs_needing_work(reference, partial_cache)
                    if not needed_pairs:
                        break
                    bolt_result = bolt.partial_ksps_for_reference(reference, query.k)
                    for pair, paths in bolt_result.items():
                        if pair not in needed_pairs:
                            continue
                        existing = pair_paths.setdefault(pair, [])
                        existing.extend(paths)
                        # Communication back to this QueryBolt.
                        units = sum(len(path.vertices) for path in paths)
                        self._cluster.send(bolt.worker_id, self.worker_id, units)
                for pair, paths in pair_paths.items():
                    paths.sort()
                    deduplicated: List[Path] = []
                    seen_partial: Set[Tuple[int, ...]] = set()
                    for path in paths:
                        if path.vertices in seen_partial:
                            continue
                        seen_partial.add(path.vertices)
                        deduplicated.append(path)
                        if len(deduplicated) >= query.k:
                            break
                    partial_cache[pair] = deduplicated
                # Merge partial paths into candidate complete paths.
                merge_start = time.perf_counter()
                candidates = self._merge_candidates(reference, partial_cache, query.k)
                for candidate in candidates:
                    if candidate.vertices in seen:
                        continue
                    seen.add(candidate.vertices)
                    top_paths.append(candidate)
                top_paths.sort()
                del top_paths[query.k:]
                worker.charge_compute(time.perf_counter() - merge_start)
                mark("merge", candidates=len(candidates), top=len(top_paths))

                kth = (
                    top_paths[query.k - 1].distance
                    if len(top_paths) >= query.k
                    else float("inf")
                )
                if self._pruning and top_paths:
                    # Theorem 3 stops the loop at the first reference path no
                    # shorter than the k-th candidate; longer reference paths
                    # are never consumed, so the enumerator may prune them.
                    enumerator.set_upper_bound(kth)
                next_reference = self._next_reference(enumerator, worker)
                if next_reference is None:
                    break
                if top_paths and kth <= next_reference.distance:
                    break
                reference = next_reference
            finally:
                pop_span(iteration_span)
        with self._counter_lock:
            self.queries_processed += 1
        metrics = self._cluster.metrics
        metrics.counter("bolt_queries_total").inc()
        metrics.counter("bolt_iterations_total").inc(iterations)
        metrics.histogram(
            "query_iterations", help="KSP-DG refinement rounds per query"
        ).observe(float(iterations))
        return QueryBoltResult(
            query=query,
            paths=top_paths,
            iterations=iterations,
        )

    def _skeleton_bounds(self, search_skeleton: CSRSnapshot):
        """Landmark lower bounds for reference searches on ``search_skeleton``.

        The shared replica snapshot uses the DTLP's process-wide landmark
        tables (amortised across every QueryBolt and every query);
        per-query augmented snapshots get a fresh provider, whose tables
        the query's many spur searches amortise on their own.
        """
        if search_skeleton.source is self._dtlp.skeleton_graph:
            return self._dtlp.skeleton_lower_bounds()
        return LandmarkLowerBounds(search_skeleton)

    def _skeleton_view(self, skeleton) -> CSRSnapshot:
        """Kernel view of ``skeleton`` for this query's reference searches.

        Per-query augmented skeletons get a fresh (small) snapshot; the
        shared un-augmented replica uses the DTLP-hosted snapshot (one per
        process, shared by every QueryBolt), re-read only after
        maintenance changed the graph version.
        """
        if skeleton is not self._dtlp.skeleton_graph:
            return CSRSnapshot(skeleton)
        return self._dtlp.skeleton_snapshot()

    def _next_reference(self, enumerator: LazyYen, worker) -> Optional[Path]:
        started = time.perf_counter()
        try:
            reference = enumerator.next_path()
        except (StopIteration, PathNotFoundError):
            reference = None
        worker.charge_compute(time.perf_counter() - started)
        return reference

    def _pairs_needing_work(
        self, reference: Path, cache: Dict[Tuple[int, int], List[Path]]
    ) -> Set[Tuple[int, int]]:
        vertices = reference.vertices
        return {
            (vertices[index], vertices[index + 1])
            for index in range(len(vertices) - 1)
            if (vertices[index], vertices[index + 1]) not in cache
        }

    def _merge_candidates(
        self,
        reference: Path,
        cache: Dict[Tuple[int, int], List[Path]],
        k: int,
    ) -> List[Path]:
        vertices = reference.vertices
        merged: Optional[List[Path]] = None
        for index in range(len(vertices) - 1):
            pair = (vertices[index], vertices[index + 1])
            partials = cache.get(pair, [])
            if not partials:
                return []
            if merged is None:
                merged = list(partials[:k])
                continue
            combined: List[Path] = []
            for prefix in merged:
                for extension in partials:
                    joined = prefix.vertices + extension.vertices[1:]
                    if len(set(joined)) != len(joined):
                        continue
                    combined.append(merge_paths(prefix, extension))
            combined.sort()
            merged = combined[:k]
            if not merged:
                return []
        return merged or []


class QueryBoltResult:
    """Outcome of one query processed by a QueryBolt.

    ``trace`` carries the query's finished span tree when the topology ran
    the query under tracing (see :meth:`EntranceSpout.submit_query_observed`);
    it travels on the result so process-replica executors ship it back to
    the master with the paths.
    """

    def __init__(
        self,
        query: KSPQuery,
        paths: List[Path],
        iterations: int,
        trace: Optional[Span] = None,
    ) -> None:
        self.query = query
        self.paths = paths
        self.iterations = iterations
        self.trace = trace


class EntranceSpout:
    """Master component: receives updates and queries and routes them."""

    def __init__(
        self,
        cluster: SimulatedCluster,
        dtlp: DTLP,
        subgraph_bolts: Sequence[SubgraphBolt],
        query_bolts: Sequence[QueryBolt],
    ) -> None:
        self._cluster = cluster
        self._dtlp = dtlp
        self._partition = dtlp.partition
        self._subgraph_bolts = list(subgraph_bolts)
        self._query_bolts = list(query_bolts)
        self._bolt_by_subgraph: Dict[int, SubgraphBolt] = {}
        for bolt in self._subgraph_bolts:
            for subgraph_id in bolt.subgraph_ids:
                self._bolt_by_subgraph[subgraph_id] = bolt
        self._next_query_bolt = 0
        cluster.master.host("entrance-spout")

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def submit_weight_updates(self, updates: Sequence[WeightUpdate]) -> None:
        """Route a batch of weight updates to the owning SubgraphBolts.

        Also refreshes the skeleton-graph replica (second-level index) after
        the per-subgraph maintenance completes, charging the work to the
        master, which mirrors the paper's description of the skeleton graph
        being kept consistent across QueryBolts.
        """
        started = time.perf_counter()
        updates_by_subgraph: Dict[int, List[WeightUpdate]] = {}
        for update in updates:
            owner = self._partition.owner_of_edge(update.u, update.v)
            updates_by_subgraph.setdefault(owner, []).append(update)
        self._cluster.master.charge_compute(time.perf_counter() - started)
        for subgraph_id, batch in updates_by_subgraph.items():
            bolt = self._bolt_by_subgraph[subgraph_id]
            self._cluster.send(SimulatedCluster.MASTER_ID, bolt.worker_id, len(batch))
            bolt.handle_weight_updates(subgraph_id, batch)
        # Skeleton refresh (aggregation of lower bound distances).
        started = time.perf_counter()
        self._dtlp._refresh_skeleton_for_subgraphs(set(updates_by_subgraph))
        self._cluster.master.charge_compute(time.perf_counter() - started)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def submit_query(
        self, query: KSPQuery, route_index: Optional[int] = None
    ) -> QueryBoltResult:
        """Process one query through Step 1 (if needed) and Step 2.

        Parameters
        ----------
        query:
            The KSP query.
        route_index:
            Global submission index used for deterministic round-robin
            QueryBolt selection.  The topology supplies it so that replica
            spouts inside executor worker processes route each query to the
            same bolt the serial reference would; when omitted the spout
            falls back to its own internal counter (direct use).
        """
        attachments: Dict[int, Dict[int, float]] = {}
        direct_edge: Optional[float] = None
        step1_span = push_span("step1")
        for endpoint in {query.source, query.target}:
            if self._partition.is_boundary(endpoint):
                continue
            owners = self._partition.subgraphs_of_vertex(endpoint)
            bounds: Dict[int, float] = {}
            for subgraph_id in owners:
                bolt = self._bolt_by_subgraph[subgraph_id]
                self._cluster.send(SimulatedCluster.MASTER_ID, bolt.worker_id, 2)
                bolt_bounds = bolt.attachment_bounds(endpoint)
                self._cluster.send(bolt.worker_id, SimulatedCluster.MASTER_ID, len(bolt_bounds))
                for boundary, distance in bolt_bounds.items():
                    current = bounds.get(boundary)
                    if current is None or distance < current:
                        bounds[boundary] = distance
            attachments[endpoint] = bounds
        if attachments and query.source != query.target:
            shared = set(self._partition.subgraphs_of_vertex(query.source)) & set(
                self._partition.subgraphs_of_vertex(query.target)
            )
            for subgraph_id in shared:
                bolt = self._bolt_by_subgraph[subgraph_id]
                value = bolt.direct_distance(query.source, query.target)
                if value is not None and (direct_edge is None or value < direct_edge):
                    direct_edge = value
        if step1_span is not None:
            step1_span.args["attachments"] = len(attachments)
            step1_span.args["direct_edge"] = direct_edge is not None
        pop_span(step1_span)

        if route_index is None:
            route_index = self._next_query_bolt
            self._next_query_bolt += 1
        query_bolt = self._query_bolts[route_index % len(self._query_bolts)]
        self._cluster.send(SimulatedCluster.MASTER_ID, query_bolt.worker_id, 3)
        self._cluster.metrics.counter("spout_queries_total").inc()
        route_span = push_span("route", bolt=query_bolt.name)
        try:
            result = query_bolt.process_query(query, attachments or None, direct_edge)
        finally:
            pop_span(route_span)
        if route_span is not None:
            route_span.args["iterations"] = result.iterations
        return result

    def submit_query_observed(
        self,
        query: KSPQuery,
        route_index: Optional[int] = None,
        trace: bool = False,
        profile: bool = False,
    ) -> QueryBoltResult:
        """Process one query with optional span tracing and kernel profiling.

        With both switches off this is exactly :meth:`submit_query`.  With
        ``trace`` the query runs under a fresh root span whose finished tree
        rides back on ``result.trace``; with ``profile`` a per-query
        :class:`~repro.obs.profile.KernelCounters` collector is active for
        the duration and its totals fold into the cluster metrics registry
        (riding the executor ledger absorb path, so totals stay
        deterministic across backends).  Both are scoped to the current
        thread, which is what keeps concurrent batch tasks isolated.
        """
        if not trace and not profile:
            return self.submit_query(query, route_index=route_index)
        counters: Optional[KernelCounters] = None
        if profile:
            counters = KernelCounters()
            activate_profiling(counters)
        root: Optional[Span] = None
        if trace:
            root = Span(
                "query",
                {
                    "route_index": route_index,
                    "source": query.source,
                    "target": query.target,
                    "k": query.k,
                },
            )
            begin_trace(root)
        try:
            result = self.submit_query(query, route_index=route_index)
        finally:
            if trace:
                end_trace()
            if counters is not None:
                deactivate_profiling()
                counters.fold_into(self._cluster.metrics)
        if root is not None:
            root.args["iterations"] = result.iterations
            if counters is not None:
                root.args["kernel"] = counters.as_dict()
            result.trace = root
        return result

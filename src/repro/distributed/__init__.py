"""Simulated distributed runtime: cluster, Storm-style topology, KSP-DG engine."""

from .bolts import EntranceSpout, QueryBolt, QueryBoltResult, SubgraphBolt
from .cluster import SimulatedCluster, SimulatedWorker, WorkerStats
from .engine import DistributedBuildReport, KSPDGEngine, distributed_build_report
from .messages import (
    AttachmentRequestMessage,
    AttachmentResponseMessage,
    Message,
    PartialPathsMessage,
    QueryMessage,
    ReferencePathMessage,
    WeightUpdateMessage,
)
from .topology import StormTopology, TopologyReport

__all__ = [
    "EntranceSpout",
    "QueryBolt",
    "QueryBoltResult",
    "SubgraphBolt",
    "SimulatedCluster",
    "SimulatedWorker",
    "WorkerStats",
    "DistributedBuildReport",
    "KSPDGEngine",
    "distributed_build_report",
    "Message",
    "QueryMessage",
    "WeightUpdateMessage",
    "ReferencePathMessage",
    "PartialPathsMessage",
    "AttachmentRequestMessage",
    "AttachmentResponseMessage",
    "StormTopology",
    "TopologyReport",
]

"""Simulated distributed runtime: placement, Storm-style topology, KSP-DG engine.

The *logical* cluster lives here (placement, routing, cost attribution);
the *physical* execution backends live in :mod:`repro.exec` — see
``ARCHITECTURE.md`` ("Placement vs. Executor").  The placement is either
static (the paper's deployment-time greedy balance) or *load-adaptive*:
:mod:`repro.distributed.rebalance` aggregates per-subgraph cost telemetry
into rolling load reports and live-migrates subgraphs between workers when
a configurable skew threshold is crossed (``ARCHITECTURE.md``, "Load
telemetry & rebalancing").
"""

from .autoscale import AutoscaleConfig, Autoscaler, resolve_autoscale
from .bolts import EntranceSpout, QueryBolt, QueryBoltResult, SubgraphBolt
from .cluster import ClusterAccountant, SimulatedCluster, SimulatedWorker, WorkerStats
from .engine import DistributedBuildReport, KSPDGEngine, distributed_build_report
from .placement import Placement, greedy_balance
from .rebalance import (
    ElasticityStats,
    LoadReport,
    MigrationPlan,
    RebalanceConfig,
    Rebalancer,
    apply_join,
    apply_moves,
    default_rebalance_spec,
    plan_join,
    plan_rebalance,
    resolve_rebalance,
)
from .runtime import TopologyBundle, TopologyReplica, build_topology_replica
from .messages import (
    AttachmentRequestMessage,
    AttachmentResponseMessage,
    Message,
    PartialPathsMessage,
    QueryMessage,
    ReferencePathMessage,
    WeightUpdateMessage,
)
from .topology import JoinReport, StormTopology, TopologyReport

__all__ = [
    "AutoscaleConfig",
    "Autoscaler",
    "ElasticityStats",
    "JoinReport",
    "apply_join",
    "apply_moves",
    "plan_join",
    "resolve_autoscale",
    "EntranceSpout",
    "QueryBolt",
    "QueryBoltResult",
    "SubgraphBolt",
    "ClusterAccountant",
    "SimulatedCluster",
    "SimulatedWorker",
    "WorkerStats",
    "Placement",
    "greedy_balance",
    "LoadReport",
    "MigrationPlan",
    "RebalanceConfig",
    "Rebalancer",
    "default_rebalance_spec",
    "plan_rebalance",
    "resolve_rebalance",
    "TopologyBundle",
    "TopologyReplica",
    "build_topology_replica",
    "DistributedBuildReport",
    "KSPDGEngine",
    "distributed_build_report",
    "Message",
    "QueryMessage",
    "WeightUpdateMessage",
    "ReferencePathMessage",
    "PartialPathsMessage",
    "AttachmentRequestMessage",
    "AttachmentResponseMessage",
    "StormTopology",
    "TopologyReport",
]

"""Distributed KSP-DG query engine adapter.

Wraps :class:`~repro.distributed.topology.StormTopology` behind the
:class:`~repro.workloads.runner.QueryEngine` protocol so the benchmark
harness can compare KSP-DG with the centralized baselines through one code
path.  Also exposes a parallel DTLP *build* helper: with the default serial
backend it models distributing the per-subgraph index construction across
workers (Figure 42); with a concurrent backend it actually builds the
per-subgraph indexes in parallel and adopts them into the final index.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.dtlp import DTLP, DTLPConfig
from ..core.subgraph_index import SubgraphIndex
from ..exec import Executor, resolve_executor
from ..graph.graph import DynamicGraph
from ..graph.partition import GraphPartition
from ..graph.partition_ml import make_partition
from ..workloads.queries import KSPQuery
from ..workloads.runner import QueryOutcome
from .cluster import SimulatedCluster
from .placement import greedy_balance
from .topology import StormTopology, TopologyReport

__all__ = ["KSPDGEngine", "distributed_build_report", "DistributedBuildReport"]


class KSPDGEngine:
    """Query engine running KSP-DG on the simulated topology.

    Satisfies the :class:`~repro.workloads.runner.QueryEngine` protocol:
    :meth:`answer` processes a single query.  Batch execution with proper
    parallel-time accounting should use :meth:`run_batch`, which returns the
    richer :class:`~repro.distributed.topology.TopologyReport`.
    """

    name = "KSP-DG"

    def __init__(self, topology: StormTopology) -> None:
        self._topology = topology

    @classmethod
    def local(
        cls,
        dtlp: DTLP,
        num_workers: int = 4,
        kernel: str = "snapshot",
        executor: Union[str, Executor, None] = None,
        executor_workers: Optional[int] = None,
        rebalance: Union[None, bool, float, str] = None,
        autoscale: Union[None, bool, int, float, str] = None,
        heuristic: str = "none",
        pruning: bool = True,
        store_path: Optional[str] = None,
    ) -> "KSPDGEngine":
        """Build an engine on a fresh simulated topology over ``dtlp``.

        Convenience used by the serving layer and the CLI: the topology
        shares the live graph and index objects, so weight updates applied
        through the graph (and propagated with ``dtlp.attach()``) are
        immediately visible to subsequent queries.  ``kernel`` selects the
        compute path of the bolts (array snapshots by default),
        ``executor`` the physical backend running query batches,
        ``rebalance`` enables load-adaptive placement with live subgraph
        migration, ``autoscale`` enables saturation-driven worker
        join/retirement (see :mod:`repro.distributed.autoscale`),
        ``heuristic``/``pruning`` configure the goal-directed
        pruned query kernel (see ``ARCHITECTURE.md``), and ``store_path``
        lets process replicas cold-start from a partition store instead of
        a pickled bundle (see :mod:`repro.store`).
        """
        return cls(
            StormTopology(
                dtlp,
                num_workers=num_workers,
                kernel=kernel,
                executor=executor,
                executor_workers=executor_workers,
                rebalance=rebalance,
                autoscale=autoscale,
                heuristic=heuristic,
                pruning=pruning,
                store_path=store_path,
            )
        )

    @property
    def topology(self) -> StormTopology:
        """The underlying simulated topology."""
        return self._topology

    @property
    def kernel(self) -> str:
        """Compute kernel of the underlying topology."""
        return self._topology.kernel

    @property
    def executor_name(self) -> str:
        """Execution backend of the underlying topology."""
        return self._topology.executor.name

    @property
    def heuristic(self) -> str:
        """Lower-bound heuristic of the underlying topology."""
        return self._topology.heuristic

    def enable_tracing(self) -> None:
        """Run subsequent queries under span tracing.

        Result outcomes then carry their span tree on ``outcome.trace``;
        the serving layer grafts the trees into its own trace session.
        """
        self._topology.enable_query_traces()

    def answer(self, query: KSPQuery) -> QueryOutcome:
        """Answer one query (used by the generic batch runner).

        Reuses the batch code path with a singleton batch, so per-batch
        executor setup (replica groups, kernel-cache sync) is established
        once on the topology and amortised across every subsequent call
        instead of being re-paid per query.
        """
        return self.answer_many([query])[0]

    def answer_many(self, queries: Sequence[KSPQuery]) -> List[QueryOutcome]:
        """Answer a batch through the topology's execution backend.

        Per-query wall-clock time is not observable when the batch runs on
        concurrent workers, so each outcome reports the batch's mean.
        """
        queries = list(queries)
        if not queries:
            return []
        started = time.perf_counter()
        report = self._topology.run_queries(queries, reset_metrics=True)
        elapsed = (time.perf_counter() - started) / len(queries)
        return [
            QueryOutcome(
                query=query,
                paths=result.paths,
                elapsed_seconds=elapsed,
                iterations=result.iterations,
                trace=getattr(result, "trace", None),
            )
            for query, result in zip(queries, report.results)
        ]

    def run_batch(self, queries: Sequence[KSPQuery]) -> TopologyReport:
        """Process a whole batch with cluster-level cost accounting."""
        return self._topology.run_queries(queries, reset_metrics=True)

    def healthy(self) -> bool:
        """Whether the topology's execution backend can answer queries.

        Consumed by the front door's replica health tracking — a process
        backend with a dead worker reports ``False`` here long before the
        next query batch would crash on the broken pipe.
        """
        return self._topology.executor.healthy()

    def close(self) -> None:
        """Release the topology's executor resources (idempotent)."""
        self._topology.close()


@dataclass
class DistributedBuildReport:
    """Cost report of building DTLP with per-subgraph work spread over workers.

    Attributes
    ----------
    num_workers:
        Number of workers used.
    total_build_seconds:
        Sum of per-subgraph index construction times (single-core work).
    parallel_build_seconds:
        Parallel completion time of the build.  With the serial backend
        this is the *modelled* makespan of a balanced assignment of the
        measured per-subgraph build times; with a concurrent backend it is
        the *measured* wall-clock time of the parallel index construction.
    dtlp:
        The built index (usable for subsequent experiments).
    executor:
        Execution backend that built the index.
    """

    num_workers: int
    total_build_seconds: float
    parallel_build_seconds: float
    dtlp: DTLP
    executor: str = "serial"


def _build_index_chunk(
    task: Tuple[GraphPartition, DTLPConfig, Tuple[int, ...], Optional[str]],
) -> Dict[int, SubgraphIndex]:
    """Build the first-level indexes of one chunk of subgraphs.

    Module-level so the process backend can ship it; the partition travels
    with the chunk (its parent graph is pickled once per worker, not per
    subgraph).  When ``store_dir`` is set, the worker also writes each
    subgraph's ``part<k>/`` files — the parallel half of a partition-store
    save, done here so the (potentially large) serialized index state never
    travels back through the result pipe just to be written by the parent.
    """
    partition, config, subgraph_ids, store_dir = task
    indexes = {
        subgraph_id: SubgraphIndex(
            partition.subgraph(subgraph_id),
            xi=config.xi,
            directed=config.directed,
            max_paths_per_count=config.max_paths_per_count,
            max_expansions=config.max_expansions,
        ).build()
        for subgraph_id in subgraph_ids
    }
    if store_dir is not None:
        from pathlib import Path

        from ..store.partition_store import write_partition_files

        for subgraph_id, index in indexes.items():
            write_partition_files(
                Path(store_dir) / f"part{subgraph_id}",
                partition.subgraph(subgraph_id),
                index,
            )
    return indexes


def distributed_build_report(
    graph: DynamicGraph,
    config: DTLPConfig,
    num_workers: int,
    executor: Union[str, Executor, None] = "serial",
    store_dir: Optional[str] = None,
) -> DistributedBuildReport:
    """Build a DTLP index and report its distributed construction cost.

    The per-subgraph first-level indexes are independent, so the paper
    builds them in parallel across the cluster (Figure 42 shows the
    building time shrinking as servers are added).  With the default
    ``serial`` backend this helper builds the index once, records each
    subgraph's build time, and computes the makespan of a balanced
    assignment of those build tasks to ``num_workers`` workers.  With the
    ``thread``/``process`` backends the subgraph indexes are genuinely
    built in parallel — chunked by the same balanced assignment — and
    adopted into the final index, and ``parallel_build_seconds`` is the
    measured wall-clock time of that fan-out.

    ``store_dir`` additionally makes each worker write its chunk's
    partition-store ``part<k>/`` files while the index state is hot in its
    memory (see :mod:`repro.store`); the caller finishes the save with
    ``PartitionStore.save(dtlp, store_dir, parts_written=True)``.  With the
    serial backend the files are written inline after the build.
    """
    exec_obj, owned = resolve_executor(executor, workers=num_workers)
    try:
        if exec_obj.name == "serial":
            dtlp = DTLP(graph, config).build()
            if store_dir is not None:
                from pathlib import Path

                from ..store.partition_store import write_partition_files

                for subgraph in dtlp.partition.subgraphs:
                    write_partition_files(
                        Path(store_dir) / f"part{subgraph.subgraph_id}",
                        subgraph,
                        dtlp.subgraph_index(subgraph.subgraph_id),
                    )
            per_subgraph_seconds = {
                subgraph_id: index.build_seconds
                for subgraph_id, index in dtlp.subgraph_indexes().items()
            }
            total = sum(per_subgraph_seconds.values())
            cluster = SimulatedCluster(num_workers)
            assignment = cluster.assign_balanced(per_subgraph_seconds)
            for subgraph_id, worker_id in assignment.items():
                cluster.worker(worker_id).charge_compute(
                    per_subgraph_seconds[subgraph_id]
                )
            return DistributedBuildReport(
                num_workers=num_workers,
                total_build_seconds=total,
                parallel_build_seconds=cluster.makespan_seconds(),
                dtlp=dtlp,
                executor=exec_obj.name,
            )

        # Concurrent path: partition first, fan the independent per-subgraph
        # builds out over the backend, then adopt the results.
        dtlp = DTLP(graph, config)
        config = dtlp.config  # normalised (directedness follows the graph)
        partition = make_partition(graph, config.z, partitioner=config.partitioner)
        dtlp = DTLP(graph, config, partition=partition)
        loads = {
            subgraph.subgraph_id: float(subgraph.num_vertices)
            for subgraph in partition.subgraphs
        }
        assignment = greedy_balance(loads, num_workers)
        chunks: Dict[int, List[int]] = {}
        for subgraph_id, worker_id in assignment.items():
            chunks.setdefault(worker_id, []).append(subgraph_id)
        tasks = [
            (partition, config, tuple(sorted(subgraph_ids)),
             None if store_dir is None else str(store_dir))
            for _, subgraph_ids in sorted(chunks.items())
        ]
        started = time.perf_counter()
        built_chunks = exec_obj.map(_build_index_chunk, tasks)
        parallel_seconds = time.perf_counter() - started
        indexes: Dict[int, SubgraphIndex] = {}
        for chunk in built_chunks:
            indexes.update(chunk)
        dtlp.build(prebuilt_indexes=indexes)
        total = sum(index.build_seconds for index in indexes.values())
        return DistributedBuildReport(
            num_workers=num_workers,
            total_build_seconds=total,
            parallel_build_seconds=parallel_seconds,
            dtlp=dtlp,
            executor=exec_obj.name,
        )
    finally:
        if owned:
            exec_obj.close()

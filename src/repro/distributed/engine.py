"""Distributed KSP-DG query engine adapter.

Wraps :class:`~repro.distributed.topology.StormTopology` behind the
:class:`~repro.workloads.runner.QueryEngine` protocol so the benchmark
harness can compare KSP-DG with the centralized baselines through one code
path.  Also exposes a parallel DTLP *build* helper that models distributing
the per-subgraph index construction across workers (Figure 42).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from ..core.dtlp import DTLP, DTLPConfig
from ..graph.graph import DynamicGraph
from ..workloads.queries import KSPQuery
from ..workloads.runner import QueryOutcome
from .cluster import SimulatedCluster
from .topology import StormTopology, TopologyReport

__all__ = ["KSPDGEngine", "distributed_build_report", "DistributedBuildReport"]


class KSPDGEngine:
    """Query engine running KSP-DG on the simulated topology.

    Satisfies the :class:`~repro.workloads.runner.QueryEngine` protocol:
    :meth:`answer` processes a single query.  Batch execution with proper
    parallel-time accounting should use :meth:`run_batch`, which returns the
    richer :class:`~repro.distributed.topology.TopologyReport`.
    """

    name = "KSP-DG"

    def __init__(self, topology: StormTopology) -> None:
        self._topology = topology

    @classmethod
    def local(
        cls, dtlp: DTLP, num_workers: int = 4, kernel: str = "snapshot"
    ) -> "KSPDGEngine":
        """Build an engine on a fresh simulated topology over ``dtlp``.

        Convenience used by the serving layer and the CLI: the topology
        shares the live graph and index objects, so weight updates applied
        through the graph (and propagated with ``dtlp.attach()``) are
        immediately visible to subsequent queries.  ``kernel`` selects the
        compute path of the bolts (array snapshots by default).
        """
        return cls(StormTopology(dtlp, num_workers=num_workers, kernel=kernel))

    @property
    def topology(self) -> StormTopology:
        """The underlying simulated topology."""
        return self._topology

    @property
    def kernel(self) -> str:
        """Compute kernel of the underlying topology."""
        return self._topology.kernel

    def answer(self, query: KSPQuery) -> QueryOutcome:
        """Answer one query (used by the generic batch runner)."""
        started = time.perf_counter()
        report = self._topology.run_queries([query], reset_metrics=True)
        elapsed = time.perf_counter() - started
        result = report.results[0]
        return QueryOutcome(
            query=query,
            paths=result.paths,
            elapsed_seconds=elapsed,
            iterations=result.iterations,
        )

    def run_batch(self, queries: Sequence[KSPQuery]) -> TopologyReport:
        """Process a whole batch with cluster-level cost accounting."""
        return self._topology.run_queries(queries, reset_metrics=True)


@dataclass
class DistributedBuildReport:
    """Cost report of building DTLP with per-subgraph work spread over workers.

    Attributes
    ----------
    num_workers:
        Number of workers used.
    total_build_seconds:
        Sum of per-subgraph index construction times (single-core work).
    parallel_build_seconds:
        Simulated makespan when subgraph builds are spread over the workers.
    dtlp:
        The built index (usable for subsequent experiments).
    """

    num_workers: int
    total_build_seconds: float
    parallel_build_seconds: float
    dtlp: DTLP


def distributed_build_report(
    graph: DynamicGraph,
    config: DTLPConfig,
    num_workers: int,
) -> DistributedBuildReport:
    """Build a DTLP index and model its distributed construction cost.

    The per-subgraph first-level indexes are independent, so the paper builds
    them in parallel across the cluster (Figure 42 shows the building time
    shrinking as servers are added).  This helper builds the index once,
    records each subgraph's build time, and computes the makespan of a
    balanced assignment of those build tasks to ``num_workers`` workers.
    """
    started = time.perf_counter()
    dtlp = DTLP(graph, config).build()
    _ = time.perf_counter() - started
    per_subgraph_seconds = {
        subgraph_id: index.build_seconds
        for subgraph_id, index in dtlp.subgraph_indexes().items()
    }
    total = sum(per_subgraph_seconds.values())
    cluster = SimulatedCluster(num_workers)
    assignment = cluster.assign_balanced(per_subgraph_seconds)
    for subgraph_id, worker_id in assignment.items():
        cluster.worker(worker_id).charge_compute(per_subgraph_seconds[subgraph_id])
    return DistributedBuildReport(
        num_workers=num_workers,
        total_build_seconds=total,
        parallel_build_seconds=cluster.makespan_seconds(),
        dtlp=dtlp,
    )

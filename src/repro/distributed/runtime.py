"""Worker-process resident state for the distributed layer.

When :class:`~repro.distributed.topology.StormTopology` runs on the
``process`` execution backend, each executor worker holds a
:class:`TopologyReplica`: a full copy of the logical topology — graph,
DTLP index (with its CSR snapshot caches), subgraph/query bolts and a
private cost cluster — built **once** from a pickled
:class:`TopologyBundle` when the group is spawned.  Afterwards only two
kinds of envelope ever cross the process boundary:

* **weight-update deltas** (:meth:`TopologyReplica.sync`) — the master
  ships ``graph.edges_changed_since(last_synced_version)`` before each
  batch, and the replica applies the coalesced batch to its graph and
  index.  Per-subgraph maintenance recomputes bounding-path distances from
  the *current* weights (Algorithm 2), so a replica that catches up on a
  coalesced delta reaches exactly the state the master reached through the
  individual rounds.
* **query envelopes** (:meth:`TopologyReplica.run_queries`) — ``(seq,
  route_index, query)`` triples.  The replica routes each query through
  its own spout using the shipped ``route_index``, so bolt selection —
  and therefore message/unit accounting — matches the serial reference
  bit for bit.  The chunk's charges are merged into one ledger cluster
  returned with the tagged results and absorbed by the master (charges
  are additive, so the merge is exact).
* **placement-change plans** (:meth:`TopologyReplica.migrate` /
  :meth:`TopologyReplica.fail_worker`) — the move lists computed on the
  master by the load-adaptive placement layer
  (:mod:`repro.distributed.rebalance`) or by failover.  Each replica
  already holds every subgraph's state, so only the plan crosses the pipe
  and the replica applies the identical bolt surgery in place — no
  respawn, no bundle re-ship.

The module-level :func:`build_topology_replica` is the picklable factory
handed to :meth:`repro.exec.base.Executor.spawn_group`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.dtlp import DTLP
from ..graph.graph import WeightUpdate
from ..workloads.queries import KSPQuery
from .bolts import EntranceSpout, QueryBolt, QueryBoltResult, SubgraphBolt
from .cluster import ClusterAccountant, SimulatedCluster
from .rebalance import Move, apply_join, apply_moves

__all__ = [
    "TopologyBundle",
    "TopologyReplica",
    "QueryEnvelope",
    "build_topology_replica",
]

#: One routed query shipped to a replica: ``(seq, route_index, query)``.
#: ``seq`` restores submission order on the master; ``route_index`` pins
#: the QueryBolt choice to the serial reference's round-robin.
QueryEnvelope = Tuple[int, int, KSPQuery]


@dataclass
class TopologyBundle:
    """Everything a worker process needs to rebuild the logical topology.

    The bolt lists are shipped as ordered specs (not live bolt objects) so
    the replica constructs its components in exactly the master's order —
    SubgraphBolt fan-out order determines communication accounting — while
    leaving master-side wiring (accountants, locks, executor handles)
    behind.

    Two shipping modes exist.  The classic one pickles the whole graph +
    DTLP through ``dtlp``.  When the topology sits on a partition store
    (:mod:`repro.store`), ``dtlp`` is ``None`` and the bundle instead
    carries ``store_path`` — each worker then reconstructs graph and index
    from the on-disk partition files (O(load), no index pickle crosses the
    pipe) and applies ``catchup``, the master-computed weight delta since
    the store was saved, to reach the master's exact state at spawn time.
    """

    dtlp: Optional[DTLP]
    kernel: str
    num_workers: int
    #: Ordered ``(name, worker_id, subgraph_ids)`` specs.
    subgraph_bolts: List[Tuple[str, int, Tuple[int, ...]]]
    #: Ordered ``(name, worker_id)`` specs.
    query_bolts: List[Tuple[str, int]]
    #: Master graph version at bundle time (sync baseline, informational —
    #: the master tracks the authoritative baseline itself).
    graph_version: int
    #: Goal-directed pruning configuration (mirrors the master topology's).
    heuristic: str = "none"
    pruning: bool = True
    #: Partition-store directory to cold-start from when ``dtlp`` is None.
    store_path: Optional[str] = None
    #: Weight updates bringing a store-loaded replica to the master's
    #: weights as of bundle time.
    catchup: Tuple[WeightUpdate, ...] = ()


class TopologyReplica:
    """Resident copy of the topology inside one executor worker process."""

    def __init__(self, bundle: TopologyBundle) -> None:
        if bundle.dtlp is not None:
            self._dtlp = bundle.dtlp
        else:
            # Store-shipped bundle: rebuild graph and index from the
            # partition files (tier-1 load — the reconstructed graph
            # carries exactly the stored weights), then catch up to the
            # master's weights at bundle time.
            from ..store.partition_store import PartitionStore

            store = PartitionStore(bundle.store_path)
            graph = store.load_graph()
            self._dtlp = store.load(graph)
            if bundle.catchup:
                catchup = list(bundle.catchup)
                graph.apply_updates(catchup)
                self._dtlp.handle_updates(catchup)
        self._graph = self._dtlp.graph
        self._kernel = bundle.kernel
        self._heuristic = bundle.heuristic
        self._pruning = bundle.pruning
        self._cluster = SimulatedCluster(bundle.num_workers)
        self._account = ClusterAccountant(self._cluster)
        self._subgraph_bolts = [
            SubgraphBolt(
                name=name,
                worker_id=worker_id,
                cluster=self._account,
                dtlp=self._dtlp,
                subgraph_ids=subgraph_ids,
                kernel=bundle.kernel,
                heuristic=bundle.heuristic,
                pruning=bundle.pruning,
            )
            for name, worker_id, subgraph_ids in bundle.subgraph_bolts
        ]
        self._query_bolts = [
            QueryBolt(
                name=name,
                worker_id=worker_id,
                cluster=self._account,
                dtlp=self._dtlp,
                subgraph_bolts=self._subgraph_bolts,
                kernel=bundle.kernel,
                heuristic=bundle.heuristic,
                pruning=bundle.pruning,
            )
            for name, worker_id in bundle.query_bolts
        ]
        self._spout = EntranceSpout(
            cluster=self._account,
            dtlp=self._dtlp,
            subgraph_bolts=self._subgraph_bolts,
            query_bolts=self._query_bolts,
        )

    def sync(self, updates: Sequence[WeightUpdate]) -> int:
        """Apply a coalesced weight-update delta to graph and index.

        The replica graph arrives with an empty listener list (see
        :meth:`repro.graph.graph.DynamicGraph.__getstate__`), so the index
        refresh is invoked explicitly — exactly once — after the weights
        land.  Returns the replica's new graph version.
        """
        updates = list(updates)
        if updates:
            self._graph.apply_updates(updates)
            self._dtlp.handle_updates(updates)
        return self._graph.version

    def migrate(self, moves: Sequence[Move]) -> int:
        """Apply a master-computed migration plan to this replica, in place.

        The replica holds every subgraph's state already (graph, partition
        and DTLP indexes are resident), so a live migration is pure bolt
        surgery: the same :func:`~repro.distributed.rebalance.apply_moves`
        the master ran, against this replica's bolts and private cost
        cluster, followed by the same spout re-wire.  Keeping both sides on
        one code path is what keeps routing and accounting bit-identical
        across the swap.  Returns the number of subgraphs migrated.
        """
        migrated = apply_moves(
            moves, self._subgraph_bolts, self._account, self._dtlp,
            transfer_state=True,
        )
        self._rebuild_spout()
        return migrated

    def fail_worker(self, worker_id: int, moves: Sequence[Move]) -> int:
        """Mirror the master's worker-failure surgery on this replica.

        ``moves`` is the recovery plan the master computed; applying the
        shipped plan (rather than recomputing it) guarantees the replica
        reaches the exact same post-failure assignment.
        """
        # apply_moves discards every moved id from its failed source bolt,
        # so the failed bolts end up empty without further surgery.
        migrated = apply_moves(
            moves, self._subgraph_bolts, self._account, self._dtlp,
            transfer_state=False,
        )
        self._subgraph_bolts = [
            b for b in self._subgraph_bolts if b.worker_id != worker_id
        ]
        self._query_bolts = [
            b for b in self._query_bolts if b.worker_id != worker_id
        ]
        for query_bolt in self._query_bolts:
            query_bolt.set_subgraph_bolts(self._subgraph_bolts)
        if not self._query_bolts:
            survivor = self._subgraph_bolts[0].worker_id
            self._query_bolts = [
                QueryBolt(
                    name=f"query-bolt-{survivor}-recovered",
                    worker_id=survivor,
                    cluster=self._account,
                    dtlp=self._dtlp,
                    subgraph_bolts=self._subgraph_bolts,
                    kernel=self._kernel,
                    heuristic=self._heuristic,
                    pruning=self._pruning,
                )
            ]
        self._rebuild_spout()
        return migrated

    def add_worker(
        self,
        worker_id: int,
        moves: Sequence[Move],
        from_store: bool = False,
        catchup_updates: int = 0,
    ) -> int:
        """Mirror the master's worker-join surgery on this replica.

        Grows the private cost cluster (so later batch ledgers match the
        master's new shape), appends the joiner's bolts in the master's
        construction order — SubgraphBolt order determines communication
        accounting, QueryBolt order determines round-robin routing — and
        applies the shipped join plan.  The executor's OS-process pool is
        untouched: logical workers are a placement concept, and one
        resident replica serves any number of them.
        """
        while self._cluster.num_workers <= worker_id:
            self._cluster.add_worker()
        self._subgraph_bolts.append(
            SubgraphBolt(
                name=f"subgraph-bolt-{worker_id}",
                worker_id=worker_id,
                cluster=self._account,
                dtlp=self._dtlp,
                subgraph_ids=(),
                kernel=self._kernel,
                heuristic=self._heuristic,
                pruning=self._pruning,
            )
        )
        self._query_bolts.append(
            QueryBolt(
                name=f"query-bolt-{worker_id}-0",
                worker_id=worker_id,
                cluster=self._account,
                dtlp=self._dtlp,
                subgraph_bolts=self._subgraph_bolts,
                kernel=self._kernel,
                heuristic=self._heuristic,
                pruning=self._pruning,
            )
        )
        for query_bolt in self._query_bolts:
            query_bolt.set_subgraph_bolts(self._subgraph_bolts)
        migrated = apply_join(
            moves, self._subgraph_bolts, self._account, self._dtlp,
            from_store=from_store,
            catchup_updates=catchup_updates,
        )
        self._rebuild_spout()
        return migrated

    def retire_worker(self, worker_id: int, moves: Sequence[Move]) -> int:
        """Mirror the master's graceful scale-down surgery on this replica.

        Like :meth:`fail_worker` but with live state transfer — the
        retiree ships its subgraphs to the survivors before its bolts are
        dropped.
        """
        migrated = apply_moves(
            moves, self._subgraph_bolts, self._account, self._dtlp,
            transfer_state=True,
        )
        self._subgraph_bolts = [
            b for b in self._subgraph_bolts if b.worker_id != worker_id
        ]
        self._query_bolts = [
            b for b in self._query_bolts if b.worker_id != worker_id
        ]
        for query_bolt in self._query_bolts:
            query_bolt.set_subgraph_bolts(self._subgraph_bolts)
        self._rebuild_spout()
        return migrated

    def _rebuild_spout(self) -> None:
        """Re-wire this replica's spout against its current bolt lists."""
        self._spout = EntranceSpout(
            cluster=self._account,
            dtlp=self._dtlp,
            subgraph_bolts=self._subgraph_bolts,
            query_bolts=self._query_bolts,
        )

    def run_queries(
        self,
        envelopes: Sequence[QueryEnvelope],
        trace: bool = False,
        profile: bool = False,
    ) -> Tuple[List[Tuple[int, QueryBoltResult]], SimulatedCluster]:
        """Process query envelopes against one chunk-level cost ledger.

        Charges are additive, so pre-merging the chunk into a single
        ledger (instead of shipping one per query) keeps the reply payload
        independent of batch size without changing the absorbed totals.
        The observability switches arrive per call (not in the bundle), so
        the master can turn tracing/profiling on after the replicas were
        spawned; span trees ride back on the results and kernel counters on
        the ledger's metrics registry.
        """
        ledger = SimulatedCluster(self._cluster.num_workers)
        self._account.activate(ledger)
        out: List[Tuple[int, QueryBoltResult]] = []
        try:
            if trace or profile:
                for seq, route_index, query in envelopes:
                    out.append(
                        (
                            seq,
                            self._spout.submit_query_observed(
                                query,
                                route_index=route_index,
                                trace=trace,
                                profile=profile,
                            ),
                        )
                    )
            else:
                for seq, route_index, query in envelopes:
                    out.append(
                        (seq, self._spout.submit_query(query, route_index=route_index))
                    )
        finally:
            self._account.deactivate()
        return out, ledger


def build_topology_replica(bundle: TopologyBundle) -> TopologyReplica:
    """Picklable factory used with :meth:`repro.exec.base.Executor.spawn_group`."""
    return TopologyReplica(bundle)

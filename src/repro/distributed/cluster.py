"""Simulated cluster: workers, cost accounting and the parallel-time model.

The paper deploys KSP-DG on Apache Storm across 10-20 physical servers.  This
repository substitutes an in-process simulation that preserves the aspects
the evaluation depends on:

* the *placement* of subgraphs (and their first-level DTLP indexes) onto
  workers, balanced by load;
* the *attribution* of computation to the worker that performs it, so the
  simulated parallel time of a workload is the makespan over workers;
* the *communication volume* between components, measured in vertices
  transferred (the unit of Section 5.6.1).

The simulation is intentionally simple — there is no event-driven network
model — because the paper's experiments report aggregate throughput and
latency trends rather than network-level effects.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..graph.errors import ClusterError
from ..obs.metrics import MetricsRegistry
from .placement import greedy_balance

__all__ = ["WorkerStats", "SimulatedWorker", "SimulatedCluster", "ClusterAccountant"]


@dataclass
class WorkerStats:
    """Accumulated cost statistics of one worker.

    ``subgraph_seconds`` / ``subgraph_tasks`` attribute SubgraphBolt work
    to the individual subgraph that was served — the telemetry stream the
    load-adaptive placement layer (:mod:`repro.distributed.rebalance`)
    aggregates.  They are a *parallel* channel: charging them never touches
    ``busy_seconds`` or ``tasks_executed``, so the pre-existing counters
    stay bit-identical to the seed behaviour.
    """

    worker_id: int
    busy_seconds: float = 0.0
    messages_sent: int = 0
    messages_received: int = 0
    units_sent: int = 0
    units_received: int = 0
    tasks_executed: int = 0
    memory_bytes: int = 0
    subgraph_seconds: Dict[int, float] = field(default_factory=dict)
    subgraph_tasks: Dict[int, int] = field(default_factory=dict)


class SimulatedWorker:
    """One worker (server) of the simulated cluster."""

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.stats = WorkerStats(worker_id=worker_id)
        self._components: List[str] = []

    def host(self, component_name: str) -> None:
        """Record that a topology component is placed on this worker."""
        self._components.append(component_name)

    @property
    def components(self) -> Tuple[str, ...]:
        """Names of the components hosted by this worker."""
        return tuple(self._components)

    def charge_compute(self, seconds: float) -> None:
        """Attribute ``seconds`` of computation to this worker."""
        if seconds < 0:
            raise ClusterError("cannot charge negative compute time")
        self.stats.busy_seconds += seconds
        self.stats.tasks_executed += 1

    def charge_send(self, units: int) -> None:
        """Record an outgoing message of ``units`` transfer units."""
        self.stats.messages_sent += 1
        self.stats.units_sent += units

    def charge_receive(self, units: int) -> None:
        """Record an incoming message of ``units`` transfer units."""
        self.stats.messages_received += 1
        self.stats.units_received += units

    def charge_memory(self, num_bytes: int) -> None:
        """Attribute ``num_bytes`` of resident index memory to this worker.

        Negative amounts release memory — used when a subgraph index
        migrates off this worker.
        """
        self.stats.memory_bytes += num_bytes

    def charge_subgraph(self, subgraph_id: int, seconds: float) -> None:
        """Attribute one subgraph-serving operation to ``subgraph_id``.

        Feeds the load-adaptive placement telemetry only; the worker-level
        ``busy_seconds`` / ``tasks_executed`` counters are charged
        separately (and unchanged) by the existing ``charge_compute``
        calls.  The task count is the deterministic load metric (identical
        on every execution backend); the seconds are the wall-clock one.
        """
        if seconds < 0:
            raise ClusterError("cannot charge negative subgraph time")
        stats = self.stats
        stats.subgraph_seconds[subgraph_id] = (
            stats.subgraph_seconds.get(subgraph_id, 0.0) + seconds
        )
        stats.subgraph_tasks[subgraph_id] = stats.subgraph_tasks.get(subgraph_id, 0) + 1

    def reset_time(self) -> None:
        """Clear accumulated busy time and message counters (memory stays)."""
        memory = self.stats.memory_bytes
        self.stats = WorkerStats(worker_id=self.worker_id, memory_bytes=memory)


class SimulatedCluster:
    """A pool of simulated workers plus one master.

    The pool starts at ``num_workers`` and can only *grow*
    (:meth:`add_worker`, the scale-up path): worker ids are stable for the
    lifetime of the cluster, and a failed or retired worker keeps its slot
    (and its accumulated statistics) — it simply stops hosting bolts.

    Parameters
    ----------
    num_workers:
        Number of worker servers (the paper's ``Ns``).
    """

    MASTER_ID = -1

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ClusterError("a cluster needs at least one worker")
        self._workers: List[SimulatedWorker] = [
            SimulatedWorker(worker_id) for worker_id in range(num_workers)
        ]
        self._master = SimulatedWorker(self.MASTER_ID)
        #: Cluster-wide observability registry.  Per-task ledgers carry
        #: their own registry and :meth:`absorb` merges it here, so metric
        #: values are deterministic across execution backends exactly like
        #: the worker cost counters.  Cumulative: ``reset_time`` does not
        #: clear it.
        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------------
    # topology helpers
    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        """Number of worker servers."""
        return len(self._workers)

    @property
    def workers(self) -> Sequence[SimulatedWorker]:
        """The worker objects."""
        return tuple(self._workers)

    @property
    def master(self) -> SimulatedWorker:
        """The master node hosting the EntranceSpout."""
        return self._master

    def worker(self, worker_id: int) -> SimulatedWorker:
        """Return a worker by id (or the master for ``MASTER_ID``)."""
        if worker_id == self.MASTER_ID:
            return self._master
        try:
            return self._workers[worker_id]
        except IndexError:
            raise ClusterError(f"no worker with id {worker_id}") from None

    def add_worker(self) -> int:
        """Grow the pool by one fresh worker; returns its id.

        The scale-up half of elasticity: ids are dense and stable, so the
        new worker's id is always the previous pool size.  Ledger clusters
        created after the join (and replica clusters grown by the same
        broadcast) agree on the new shape, which is what keeps
        :meth:`absorb`'s worker-count check — and with it the cross-backend
        counter identity — intact across a join.
        """
        worker_id = len(self._workers)
        self._workers.append(SimulatedWorker(worker_id))
        return worker_id

    def assign_balanced(self, loads: Mapping[int, float]) -> Dict[int, int]:
        """Assign items to workers balancing the given loads.

        Parameters
        ----------
        loads:
            Mapping from item id (e.g. subgraph id) to a load estimate
            (e.g. number of vertices).  Items are assigned greedily, largest
            first, to the currently least-loaded worker — the many-to-one
            subgraph placement of Section 5.2.

        Returns
        -------
        dict mapping item id to worker id.
        """
        return greedy_balance(loads, len(self._workers))

    def send(self, sender_id: int, recipient_id: int, units: int) -> None:
        """Account for a message of ``units`` from one node to another.

        Messages between components on the same worker are free, mirroring
        intra-process Storm transfers.
        """
        if sender_id == recipient_id:
            return
        self.worker(sender_id).charge_send(units)
        self.worker(recipient_id).charge_receive(units)

    # ------------------------------------------------------------------
    # aggregate metrics
    # ------------------------------------------------------------------
    def makespan_seconds(self) -> float:
        """Parallel completion time: the maximum busy time over all nodes."""
        return max(
            [worker.stats.busy_seconds for worker in self._workers]
            + [self._master.stats.busy_seconds]
        )

    def total_compute_seconds(self) -> float:
        """Total computation across all nodes (single-core equivalent)."""
        return (
            sum(worker.stats.busy_seconds for worker in self._workers)
            + self._master.stats.busy_seconds
        )

    def total_communication_units(self) -> int:
        """Total transfer units moved between distinct nodes."""
        return sum(worker.stats.units_sent for worker in self._workers) + (
            self._master.stats.units_sent
        )

    def load_balance_report(self) -> Dict[str, float]:
        """Spread of busy time and memory across workers.

        Section 6.6 reports that the difference between the maximum and
        minimum CPU utilisation across the cluster stays under 6% and the
        memory difference under 2%; this report provides the analogous
        numbers for the simulation.
        """
        busy = [worker.stats.busy_seconds for worker in self._workers]
        memory = [worker.stats.memory_bytes for worker in self._workers]
        total_busy = sum(busy) or 1.0
        total_memory = sum(memory) or 1
        return {
            "busy_max_fraction": max(busy) / total_busy,
            "busy_min_fraction": min(busy) / total_busy,
            "busy_spread": (max(busy) - min(busy)) / total_busy,
            "memory_max_fraction": max(memory) / total_memory,
            "memory_min_fraction": min(memory) / total_memory,
            "memory_spread": (max(memory) - min(memory)) / total_memory,
        }

    def reset_time(self) -> None:
        """Reset busy time and message counters on every node."""
        for worker in self._workers:
            worker.reset_time()
        self._master.reset_time()

    def absorb(self, ledger: "SimulatedCluster") -> None:
        """Merge another cluster's accumulated counters into this one.

        Used by the concurrent execution backends: each query task charges
        its work to a private *ledger* cluster of the same shape, and the
        ledgers are absorbed into the shared cluster in submission order
        once the batch completes.  The deterministic counters (messages,
        transfer units, task counts) therefore end up identical to a serial
        run regardless of physical interleaving; busy time merges additively
        the same way it accumulates under serial execution.  Memory charges
        are not merged — index residency is charged once at placement time,
        never per task.
        """
        if ledger.num_workers != self.num_workers:
            raise ClusterError(
                "cannot absorb a ledger with a different worker count "
                f"({ledger.num_workers} != {self.num_workers})"
            )
        for mine, theirs in zip(
            list(self._workers) + [self._master],
            list(ledger._workers) + [ledger._master],
        ):
            mine.stats.busy_seconds += theirs.stats.busy_seconds
            mine.stats.messages_sent += theirs.stats.messages_sent
            mine.stats.messages_received += theirs.stats.messages_received
            mine.stats.units_sent += theirs.stats.units_sent
            mine.stats.units_received += theirs.stats.units_received
            mine.stats.tasks_executed += theirs.stats.tasks_executed
            for subgraph_id, seconds in theirs.stats.subgraph_seconds.items():
                mine.stats.subgraph_seconds[subgraph_id] = (
                    mine.stats.subgraph_seconds.get(subgraph_id, 0.0) + seconds
                )
            for subgraph_id, tasks in theirs.stats.subgraph_tasks.items():
                mine.stats.subgraph_tasks[subgraph_id] = (
                    mine.stats.subgraph_tasks.get(subgraph_id, 0) + tasks
                )
        self.metrics.absorb(ledger.metrics)


class ClusterAccountant:
    """Charge router between a shared cluster and per-task ledgers.

    The bolts and the spout charge all compute/communication through one
    object with the :class:`SimulatedCluster` interface.  Under serial
    execution that object can simply be the shared cluster; under
    concurrent execution (thread pool or worker-process replicas) each task
    must record into its own ledger to keep the accounting exact — float
    ``+=`` on shared counters is not atomic across threads.  The accountant
    forwards every access to the ledger activated on the *current thread*,
    falling back to the shared base cluster when none is active, so the
    serial path stays byte-for-byte the seed behaviour.
    """

    def __init__(self, base: SimulatedCluster) -> None:
        self._base = base
        self._local = threading.local()

    @property
    def base(self) -> SimulatedCluster:
        """The shared cluster charged when no ledger is active."""
        return self._base

    def activate(self, ledger: Optional[SimulatedCluster]) -> None:
        """Route this thread's subsequent charges into ``ledger``."""
        self._local.ledger = ledger

    def deactivate(self) -> None:
        """Restore direct charging to the base cluster for this thread."""
        self._local.ledger = None

    def _target(self) -> SimulatedCluster:
        return getattr(self._local, "ledger", None) or self._base

    # SimulatedCluster interface consumed by spout/bolts ----------------
    @property
    def num_workers(self) -> int:
        """Number of worker servers (placement shape, never ledger-local)."""
        return self._base.num_workers

    @property
    def master(self) -> SimulatedWorker:
        """The master node of the active target."""
        return self._target().master

    def worker(self, worker_id: int) -> SimulatedWorker:
        """A worker of the active target (or its master for ``MASTER_ID``)."""
        return self._target().worker(worker_id)

    def send(self, sender_id: int, recipient_id: int, units: int) -> None:
        """Account a message on the active target."""
        self._target().send(sender_id, recipient_id, units)

    @property
    def metrics(self) -> MetricsRegistry:
        """The observability registry of the active target.

        Under a per-task ledger this is the ledger's private registry, so
        worker-side metrics ride the same absorb path as the cost
        counters and merge deterministically.
        """
        return self._target().metrics

"""Logical placement: subgraph→worker assignment and query routing.

The paper's deployment (Section 6.1) places each subgraph — and its
first-level DTLP index — on one of ``Ns`` servers, balancing load, and
spreads QueryBolts across the servers.  This module captures that *logical*
side of the cluster on its own, separated from the *physical* execution
backend (:mod:`repro.exec`): the placement decides who owns what and who is
charged for which work, while an executor merely decides which OS resource
runs it.  Keeping the placement pure and deterministic is what lets the
serial, thread and process backends produce bit-identical results and cost
accounting (see ``ARCHITECTURE.md``, "Placement vs. Executor").
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from ..graph.errors import ClusterError
from ..graph.partition import GraphPartition

__all__ = ["greedy_balance", "Placement"]


def greedy_balance(loads: Mapping[int, float], num_workers: int) -> Dict[int, int]:
    """Assign items to workers balancing the given loads.

    Items are assigned greedily, largest first, to the currently
    least-loaded worker — the many-to-one subgraph placement of Section
    5.2.  Ties (equal loads) are broken by the mapping's iteration order,
    which makes the result deterministic for a given input ordering.
    """
    if num_workers < 1:
        raise ClusterError("a placement needs at least one worker")
    assignment: Dict[int, int] = {}
    worker_loads = [0.0] * num_workers
    for item_id, load in sorted(loads.items(), key=lambda kv: -kv[1]):
        worker_id = worker_loads.index(min(worker_loads))
        worker_loads[worker_id] += load
        assignment[item_id] = worker_id
    return assignment


class Placement:
    """Deterministic subgraph→worker assignment plus query routing.

    Parameters
    ----------
    num_workers:
        Number of logical workers (the paper's ``Ns``).
    assignment:
        Mapping from subgraph id to worker id.  Use
        :meth:`Placement.balanced` to compute one from a partition.
    """

    def __init__(self, num_workers: int, assignment: Mapping[int, int]) -> None:
        if num_workers < 1:
            raise ClusterError("a placement needs at least one worker")
        for subgraph_id, worker_id in assignment.items():
            if not 0 <= worker_id < num_workers:
                raise ClusterError(
                    f"subgraph {subgraph_id} assigned to unknown worker {worker_id}"
                )
        self._num_workers = num_workers
        self._assignment: Dict[int, int] = dict(assignment)
        self._by_worker: Dict[int, List[int]] = {
            worker_id: [] for worker_id in range(num_workers)
        }
        for subgraph_id, worker_id in self._assignment.items():
            self._by_worker[worker_id].append(subgraph_id)

    @classmethod
    def balanced(cls, partition: GraphPartition, num_workers: int) -> "Placement":
        """Balanced placement of a partition's subgraphs by vertex count."""
        loads = {
            subgraph.subgraph_id: float(subgraph.num_vertices)
            for subgraph in partition.subgraphs
        }
        return cls(num_workers, greedy_balance(loads, num_workers))

    @property
    def num_workers(self) -> int:
        """Number of logical workers."""
        return self._num_workers

    @property
    def assignment(self) -> Dict[int, int]:
        """Copy of the subgraph→worker mapping."""
        return dict(self._assignment)

    def worker_of(self, subgraph_id: int) -> int:
        """Worker owning one subgraph."""
        try:
            return self._assignment[subgraph_id]
        except KeyError:
            raise ClusterError(f"subgraph {subgraph_id} is not placed") from None

    def subgraphs_on(self, worker_id: int) -> Tuple[int, ...]:
        """Subgraphs owned by one worker, in assignment order."""
        try:
            return tuple(self._by_worker[worker_id])
        except KeyError:
            raise ClusterError(f"no worker with id {worker_id}") from None

    def route_query(self, route_index: int, num_targets: int) -> int:
        """Deterministic round-robin routing of the ``route_index``-th query.

        Used to pick the QueryBolt serving a query.  The routing depends
        only on the query's global submission index and the number of
        routing targets, so replicas of the topology in executor worker
        processes route every query to the same bolt the serial reference
        would (a prerequisite for bit-identical communication accounting).
        """
        if num_targets < 1:
            raise ClusterError("cannot route queries to zero targets")
        return route_index % num_targets

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Placement workers={self._num_workers} "
            f"subgraphs={len(self._assignment)}>"
        )

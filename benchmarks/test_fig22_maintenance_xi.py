"""Figure 22: DTLP maintenance cost with varying xi (number of bounding paths).

The paper applies a heavy update batch (alpha=50%, tau=50%) and measures the
maintenance time for xi from 5 to 30, observing an ascending trend that
flattens once additional bounding paths stop materialising.

Paper map: ``docs/paper_map.md`` ties every benchmark to its figure/table.
"""

from __future__ import annotations

import pytest

from repro.bench import build_dataset, print_experiment
from repro.core import DTLP, DTLPConfig
from repro.dynamics import TrafficModel


@pytest.mark.paper_figure("fig22")
def test_fig22_maintenance_cost_vs_xi(scale, benchmark):
    rows = []
    per_dataset_times = {}
    xi_grid = tuple(scale.xi_values) + ((10,) if 10 not in scale.xi_values else ())
    for name in scale.datasets:
        times = []
        for xi in xi_grid:
            graph = build_dataset(name, scale=scale.graph_scale).snapshot()
            dtlp = DTLP(graph, DTLPConfig(z=scale.z_values[name][1], xi=xi)).build()
            model = TrafficModel(graph, alpha=0.5, tau=0.5, seed=23)
            updates = model.advance()
            elapsed = dtlp.handle_updates(updates)
            times.append(elapsed)
            rows.append([name, xi, dtlp.statistics().num_bounding_paths, round(elapsed, 4)])
        per_dataset_times[name] = times

    def kernel():
        name = scale.datasets[0]
        graph = build_dataset(name, scale=scale.graph_scale).snapshot()
        dtlp = DTLP(graph, DTLPConfig(z=scale.z_values[name][1], xi=xi_grid[0])).build()
        updates = TrafficModel(graph, alpha=0.5, tau=0.5, seed=23).advance()
        return dtlp.handle_updates(updates)

    benchmark.pedantic(kernel, rounds=1, iterations=1)

    print_experiment(
        "Figure 22: DTLP maintenance time vs xi (alpha=50%, tau=50%, scaled)",
        ["dataset", "xi", "#bounding paths", "maintenance time (s)"],
        rows,
        notes="paper: maintenance cost rises with xi, then flattens",
    )
    for name, times in per_dataset_times.items():
        assert times[-1] >= times[0] * 0.5, (
            f"maintenance time for {name} should not shrink drastically as xi grows"
        )

"""Front-door serving operating point (beyond the paper).

Paper map (``docs/paper_map.md``): the paper's Section 6 measures query
throughput of the engine itself; a deployed KSP-DG answers over HTTP
behind admission control, so the operational question is *what qps can
the front door sustain at a latency SLO, and what availability does it
hold when replicas fail*.  Two rows land in ``BENCH_frontdoor.json``:

* **clean knee** — a closed-loop concurrency sweep finds the saturation
  knee: the highest-throughput operating point whose p99 still meets the
  SLO with every request answered fresh.
* **pinned faults** — the acceptance-criteria chaos plan (mid-run replica
  kill + two-window stall) runs through the same HTTP path; the row
  reports the answered-qps/p99 under faults and the availability, which
  a hard assertion keeps at >= 0.95 with zero wrong answers.
"""

from __future__ import annotations

import pytest

from repro.bench import print_experiment
from repro.bench.benchjson import write_bench_rows
from repro.chaos import FaultEvent, FaultPlan
from repro.frontdoor import build_replicas, find_knee, run_chaos_frontdoor, start_front_door
from repro.graph import road_network
from repro.workloads.queries import QueryGenerator

SLO_MS = 250.0
BUDGET_MS = 1000.0
AVAILABILITY_FLOOR = 0.95

#: The acceptance-criteria fault plan: one replica dies mid-run for two
#: windows while another stalls across two windows.
PINNED_PLAN = FaultPlan(
    seed=11,
    events=(
        FaultEvent(batch_index=1, kind="kill", duration_batches=2),
        FaultEvent(batch_index=2, kind="stall", duration_batches=2),
    ),
)


@pytest.mark.paper_figure("frontdoor-loadtest")
def test_knee_and_availability_under_faults(scale) -> None:
    size = 6 if scale.name == "quick" else 10
    requests = 120 if scale.name == "quick" else 400
    concurrencies = (1, 2, 4, 8) if scale.name == "quick" else (1, 2, 4, 8, 16, 32)
    graph = road_network(size, size, seed=3)

    # -- clean knee: closed-loop sweep against a healthy fleet -----------
    queries = [
        query.key for query in QueryGenerator(graph, seed=0).generate(requests, k=2)
    ]
    replicas = build_replicas(graph, num_replicas=2, engine="yen")
    with start_front_door(replicas) as handle:
        knee, sweep = find_knee(
            handle.url,
            queries,
            slo_ms=SLO_MS,
            budget_ms=BUDGET_MS,
            concurrencies=concurrencies,
        )
    assert knee is not None, "no operating point met the SLO"
    assert knee.p99_ms <= SLO_MS
    assert knee.availability == 1.0

    # -- pinned faults: same HTTP path, acceptance-criteria plan ---------
    chaos = run_chaos_frontdoor(
        road_network(size, size, seed=3),
        PINNED_PLAN,
        windows=5,
        num_replicas=3,
        engine="yen",
        window_requests=8 if scale.name == "quick" else 16,
        concurrency=4,
        budget_ms=800.0,
        update_every=2,
    )
    assert chaos.correct, chaos.wrong_answers[:3]
    assert chaos.availability >= AVAILABILITY_FLOOR
    assert chaos.breaker_trips >= 1
    assert chaos.breakers_recovered, chaos.final_breaker_states

    table_rows = [
        [
            f"clean c={point.concurrency}",
            round(point.qps, 1),
            round(point.p99_ms, 2),
            round(point.availability, 4),
            "knee" if point is knee else "",
        ]
        for point in sweep
    ]
    table_rows.append(
        [
            "pinned faults",
            round(chaos.qps, 1),
            round(chaos.p99_ms, 2),
            round(chaos.availability, 4),
            f"{chaos.kills} kill, {chaos.breaker_trips} trips",
        ]
    )
    print_experiment(
        "Front-door operating point "
        f"(road_network({size}x{size}), 2 replicas clean / 3 faulted, "
        f"SLO p99 <= {SLO_MS:.0f} ms)",
        ["mode", "qps", "p99 (ms)", "availability", "note"],
        table_rows,
        notes="knee = highest-qps closed-loop point meeting the SLO with "
        "availability 1.0; faulted row runs the pinned kill+stall plan with "
        "zero wrong answers asserted",
    )
    write_bench_rows(
        "frontdoor",
        [
            {
                "config": {
                    "mode": "clean-knee",
                    "graph": f"road_network({size}x{size})",
                    "replicas": 2,
                    "engine": "yen",
                    "requests": requests,
                    "concurrency": knee.concurrency,
                },
                "qps": knee.qps,
                "p99_ms": knee.p99_ms,
                "slo_ms": SLO_MS,
                "availability": knee.availability,
            },
            {
                "config": {
                    "mode": "pinned-faults",
                    "graph": f"road_network({size}x{size})",
                    "replicas": 3,
                    "engine": "yen",
                    "plan": "kill@1x2+stall@2x2",
                    "windows": chaos.windows + chaos.cooldown_windows,
                },
                "qps": chaos.qps,
                "p99_ms": chaos.p99_ms,
                "slo_ms": SLO_MS,
                "availability": chaos.availability,
            },
        ],
    )

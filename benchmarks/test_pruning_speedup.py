"""Goal-directed pruning: end-to-end KSP-DG batch, pruned vs unpruned.

Not a paper figure — the paper's evaluation never isolates the effect of
*using* the lower bounds to prune the query searches (its baselines differ
in indexing, not search discipline).  This benchmark measures exactly that
isolation on the same DTLP index and the same snapshot kernel:

* **unpruned** — the PR-2 baseline: every reference-path spur search and
  every partial-KSP spur search is a blind early-exit Dijkstra, partial
  results are cached per query only.
* **pruned** — the goal-directed stack (``ARCHITECTURE.md``, "Goal-directed
  search & pruning"): upper-bound cutoffs from the current k-th best
  candidate, admissible lower bounds (ALT landmarks over the skeleton,
  DTLP/landmark bounds inside subgraphs), one-to-many attachment searches,
  and the cross-query partial-KSP memo keyed by weight epochs.

Paths and distances are asserted **bit-identical** between the two
configurations — and between the serial and process execution backends for
the pruned one — before any timing is trusted.  Acceptance floor: the
pruned landmark configuration answers the batch at least 1.5x faster than
the unpruned baseline on a >= 2k-vertex network.

Paper map: ``docs/paper_map.md`` ties every benchmark to its figure/table.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import print_experiment, write_bench_json
from repro.core import DTLP, DTLPConfig
from repro.distributed import StormTopology
from repro.graph import road_network
from repro.workloads import QueryGenerator


def _build(side, z, xi, executor, heuristic, pruning):
    graph = road_network(side, side, seed=7)
    dtlp = DTLP(graph, DTLPConfig(z=z, xi=xi)).build()
    queries = QueryGenerator(graph, seed=11, min_hops=4).generate(24, k=4)
    topology = StormTopology(
        dtlp, num_workers=4, executor=executor,
        heuristic=heuristic, pruning=pruning,
    )
    return graph, topology, queries


def _run_batch(side, z, xi, executor, heuristic, pruning):
    """One cold end-to-end batch; returns (wall seconds, result signature)."""
    graph, topology, queries = _build(side, z, xi, executor, heuristic, pruning)
    with topology:
        started = time.perf_counter()
        report = topology.run_queries(queries)
        elapsed = time.perf_counter() - started
    signature = [
        [(path.vertices, path.distance) for path in result.paths]
        for result in report.results
    ]
    return elapsed, signature, graph


@pytest.mark.paper_figure("pruning")
def test_pruning_speedup(scale, benchmark) -> None:
    side = 45 if scale.name == "quick" else 60  # 45^2 = 2025 >= 2k vertices
    z = 64
    xi = 3

    configs = [
        ("unpruned (baseline)", "serial", "none", False),
        ("bound-pruned", "serial", "none", True),
        ("pruned + dtlp bounds", "serial", "dtlp", True),
        ("pruned + landmarks", "serial", "landmark", True),
    ]
    timings = {}
    signatures = {}
    graph = None
    for label, executor, heuristic, pruning in configs:
        elapsed, signature, graph = _run_batch(side, z, xi, executor, heuristic, pruning)
        timings[label] = elapsed
        signatures[label] = signature

    # Identity first: every pruned configuration must reproduce the
    # unpruned baseline's paths and distances bit for bit.
    reference = signatures["unpruned (baseline)"]
    for label, signature in signatures.items():
        assert signature == reference, f"{label} diverged from the unpruned baseline"

    # ... and the pruned stack must stay bit-identical when the batch runs
    # on resident worker-process replicas instead of the serial reference.
    _, process_signature, _ = _run_batch(side, z, xi, "process", "landmark", True)
    assert process_signature == reference

    benchmark.pedantic(
        lambda: _run_batch(side, z, xi, "serial", "landmark", True),
        rounds=1,
        iterations=1,
    )

    baseline = timings["unpruned (baseline)"]
    rows = [
        [label, round(timings[label] * 1e3, 1), round(baseline / timings[label], 2)]
        for label, _, _, _ in configs
    ]
    print_experiment(
        f"Goal-directed pruning: end-to-end KSP-DG batch of 24 queries, k=4 "
        f"({graph.num_vertices} vertices, {graph.num_edges} edges, z={z}, xi={xi})",
        ["configuration", "batch (ms)", "speedup"],
        rows,
        notes="identical paths/distances asserted across all configurations and "
        "across serial vs process executors before timing; each configuration "
        "runs cold on a fresh index (landmark tables, memos and snapshot caches "
        "are built inside the timed batch)",
    )

    best = timings["pruned + landmarks"]
    write_bench_json(
        "pruning",
        config={
            "scale": scale.name,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "z": z,
            "xi": xi,
            "queries": 24,
            "k": 4,
            "heuristic": "landmark",
        },
        baseline_ms=baseline * 1e3,
        new_ms=best * 1e3,
        qps=24 / best if best else None,
    )

    # Acceptance floor of the goal-directed query kernel.
    assert baseline / best >= 1.5, (
        f"pruned landmark speedup {baseline / best:.2f}x below the 1.5x floor"
    )
    # The intermediate configurations must at least not regress materially.
    assert baseline / timings["bound-pruned"] >= 0.9
    assert baseline / timings["pruned + dtlp bounds"] >= 0.8

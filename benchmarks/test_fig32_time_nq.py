"""Figure 32: KSP-DG processing time vs the number of concurrent queries Nq.

The paper feeds batches of 2000-10000 queries and observes a roughly linear
growth of the total processing time with batch size, with a low slope thanks
to the distributed execution.  The scaled version sweeps the batch sizes of
the experiment profile.

Paper map: ``docs/paper_map.md`` ties every benchmark to its figure/table.
"""

from __future__ import annotations

import pytest

from repro.bench import DATASET_DEFAULT_Z, build_dataset, make_queries, print_experiment
from repro.core import DTLP, DTLPConfig
from repro.distributed import StormTopology


@pytest.mark.paper_figure("fig32")
def test_fig32_processing_time_vs_num_queries(scale, benchmark):
    rows = []
    per_dataset = {}
    for name in scale.datasets:
        graph = build_dataset(name, scale=scale.graph_scale)
        dtlp = DTLP(graph, DTLPConfig(z=DATASET_DEFAULT_Z[name], xi=3)).build()
        # pruning=False: the figure measures the paper's per-batch cost
        # growth; the cross-query partial-KSP memo (PR 5) would let later
        # batches run warm off earlier ones and flatten the curve.
        topology = StormTopology(dtlp, num_workers=4, pruning=False)
        # Warm the kernel snapshot caches once so every measured batch runs
        # at steady state — otherwise the smallest (first) batch absorbs all
        # the one-time CSR builds and the growth curve flips at the origin.
        topology.run_queries(make_queries(graph, 2, k=2, seed=48))
        times = []
        for batch_size in scale.num_query_batches:
            queries = make_queries(graph, batch_size, k=2, seed=47)
            report = topology.run_queries(queries)
            times.append(report.makespan_seconds)
            rows.append([name, batch_size, round(report.makespan_seconds, 4)])
        per_dataset[name] = times

    name = scale.datasets[0]

    def kernel():
        graph = build_dataset(name, scale=scale.graph_scale)
        dtlp = DTLP(graph, DTLPConfig(z=DATASET_DEFAULT_Z[name], xi=3)).build()
        topology = StormTopology(dtlp, num_workers=4, pruning=False)
        return topology.run_queries(make_queries(graph, scale.num_query_batches[0], k=2, seed=47))

    benchmark.pedantic(kernel, rounds=1, iterations=1)

    print_experiment(
        "Figure 32: processing time vs number of queries Nq (k=2, xi=3, scaled)",
        ["dataset", "Nq", "parallel time (s)"],
        rows,
        notes="paper: processing time grows approximately linearly with Nq",
    )
    for name, times in per_dataset.items():
        assert times[-1] >= times[0], f"{name}: larger batches should take longer"

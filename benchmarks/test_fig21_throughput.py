"""Figure 21: update throughput and per-update latency vs graph size Ng.

The paper streams 1000 rounds of weight changes (half of the edges each) and
reports the maximum sustained throughput (edges/s) and the average per-update
latency, observing that both are largely insensitive to the graph size.  The
scaled version streams fewer rounds but reports the same two series.

Paper map: ``docs/paper_map.md`` ties every benchmark to its figure/table.
"""

from __future__ import annotations


import pytest

from repro.bench import print_experiment
from repro.core import DTLP, DTLPConfig
from repro.dynamics import TrafficModel
from repro.graph import road_network


@pytest.mark.paper_figure("fig21")
def test_fig21_update_throughput_and_latency(scale, benchmark):
    sides = (10, 14, 18, 22) if scale.name == "quick" else (12, 17, 22, 27)
    rounds = 3 if scale.name == "quick" else 10
    rows = []
    throughputs = []
    for side in sides:
        graph = road_network(side, side, seed=37)
        dtlp = DTLP(graph, DTLPConfig(z=32, xi=10)).build()
        model = TrafficModel(graph, alpha=0.5, tau=0.5, seed=19)
        total_updates = 0
        total_seconds = 0.0
        for _ in range(rounds):
            updates = model.advance()
            total_updates += len(updates)
            total_seconds += dtlp.handle_updates(updates)
        throughput = total_updates / total_seconds if total_seconds else float("inf")
        latency_us = (total_seconds / total_updates) * 1e6 if total_updates else 0.0
        throughputs.append(throughput)
        rows.append(
            [graph.num_vertices, total_updates, round(throughput, 1), round(latency_us, 1)]
        )

    def kernel():
        graph = road_network(sides[0], sides[0], seed=37)
        dtlp = DTLP(graph, DTLPConfig(z=32, xi=10)).build()
        updates = TrafficModel(graph, alpha=0.5, tau=0.5, seed=19).advance()
        return dtlp.handle_updates(updates)

    benchmark.pedantic(kernel, rounds=1, iterations=1)

    print_experiment(
        "Figure 21: update throughput and per-update latency vs graph size (xi=10, alpha=50%)",
        ["Ng (vertices)", "#updates applied", "throughput (edges/s)", "latency (us/update)"],
        rows,
        notes="paper: throughput ~8k-12k edges/s and latency ~70-90us, roughly flat in Ng",
    )
    # Throughput should not collapse as the graph grows (same order of magnitude).
    assert max(throughputs) / max(min(throughputs), 1e-9) < 50

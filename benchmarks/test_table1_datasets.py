"""Table 1: statistics on the road-network datasets.

The paper's Table 1 reports, per dataset, the number of vertices and edges,
the default subgraph-size threshold z, the number of subgraphs (and how many
have more than five boundary vertices), and the size of the skeleton graph.
This benchmark regenerates the same table for the scaled datasets.

Paper map: ``docs/paper_map.md`` ties every benchmark to its figure/table.
"""

from __future__ import annotations

import pytest

from repro.bench import DATASET_DEFAULT_Z, build_dataset, build_dtlp, print_experiment


@pytest.mark.paper_figure("table1")
def test_table1_dataset_statistics(scale, benchmark):
    rows = []
    for name in scale.datasets:
        z = DATASET_DEFAULT_Z[name]
        graph = build_dataset(name, scale=scale.graph_scale)
        dtlp = build_dtlp(name, z=z, xi=5, scale=scale.graph_scale)
        stats = dtlp.statistics()
        rows.append(
            [
                name,
                graph.num_vertices,
                graph.num_edges,
                z,
                stats.num_subgraphs,
                stats.num_subgraphs_with_many_boundaries,
                stats.skeleton_vertices,
            ]
        )

    def rebuild_smallest():
        # Timed kernel: partition + index build of the smallest dataset.
        from repro.core import DTLP, DTLPConfig

        name = scale.datasets[0]
        graph = build_dataset(name, scale=scale.graph_scale)
        return DTLP(graph, DTLPConfig(z=DATASET_DEFAULT_Z[name], xi=5)).build()

    benchmark(rebuild_smallest)

    print_experiment(
        "Table 1: Statistics on the Road Network Datasets (scaled)",
        ["dataset", "#vertices", "#edges", "z", "#subgraphs", "#subgraphs nb>5", "|G_lambda|"],
        rows,
        notes="paper: NY 264k/734k vertices/edges, |G_lambda| ~9% of |V|; shapes should match",
    )
    assert rows
    for row in rows:
        assert row[4] > 1, "every dataset should partition into multiple subgraphs"
        assert row[6] <= row[1], "skeleton graph cannot exceed the original graph"

"""Figures 24-27: number of KSP-DG iterations vs xi, tau, k and alpha.

The paper measures how many filter/refine iterations KSP-DG needs per query
as four parameters vary:

* Figure 24 — iterations fall as xi grows (more bounding paths tighten the
  skeleton-graph lower bounds);
* Figure 25 — iterations rise as tau (the weight-variation range) grows;
* Figure 26 — iterations rise slowly with k;
* Figure 27 — the influence of alpha is dataset-dependent but stays moderate
  while weights do not change dramatically.

The scaled version uses the same protocol: build DTLP on the initial
weights, apply one traffic snapshot with the given (alpha, tau), then answer
a fixed query batch and report the mean number of iterations.

Paper map: ``docs/paper_map.md`` ties every benchmark to its figure/table.
"""

from __future__ import annotations

import pytest

from repro.bench import DATASET_DEFAULT_Z, build_dataset, make_queries, print_experiment
from repro.core import DTLP, DTLPConfig, KSPDG
from repro.dynamics import TrafficModel


def mean_iterations(name, scale, xi, alpha, tau, k, num_queries, seed=41):
    """Mean KSP-DG iterations over a fixed query batch after one traffic snapshot.

    The iteration sweeps are the most expensive experiments per data point
    (loose bounds mean many filter/refine rounds), so they run on a further
    reduced graph scale and a small query batch, and the traffic snapshot
    uses congestion-style weight increases (weights never drop below the
    free-flow travel times), which is the tight-bound regime §5.5 of the
    paper assumes.  The trends the paper reports (iterations vs xi / tau /
    k / alpha) are preserved.
    """
    graph_scale = min(scale.graph_scale, 0.5)
    num_queries = min(num_queries, 6)
    graph = build_dataset(name, scale=graph_scale).snapshot()
    z = max(12, DATASET_DEFAULT_Z[name] // 2)
    dtlp = DTLP(graph, DTLPConfig(z=z, xi=xi)).build()
    graph.add_listener(dtlp.handle_updates)
    TrafficModel(graph, alpha=alpha, tau=tau, seed=seed, direction="increase").advance()
    engine = KSPDG(dtlp)
    queries = make_queries(graph, num_queries, k=k, seed=7)
    total = 0
    for query in queries:
        total += engine.query(query.source, query.target, query.k).iterations
    return total / len(queries)


@pytest.mark.paper_figure("fig24")
def test_fig24_iterations_vs_xi(scale, benchmark):
    name = scale.datasets[0]
    k = max(scale.k_values)
    rows = []
    series = []
    for xi in scale.xi_values:
        value = mean_iterations(name, scale, xi=xi, alpha=0.3, tau=0.5, k=k,
                                num_queries=scale.num_queries)
        series.append(value)
        rows.append([name, xi, round(value, 2)])

    benchmark.pedantic(
        lambda: mean_iterations(name, scale, xi=scale.xi_values[0], alpha=0.3,
                                tau=0.5, k=k, num_queries=2),
        rounds=1, iterations=1,
    )
    print_experiment(
        f"Figure 24: #iterations vs xi (k={k}, alpha=30%, tau=50%, scaled)",
        ["dataset", "xi", "mean iterations"],
        rows,
        notes="paper: iterations decrease significantly as xi grows",
    )
    assert series[-1] <= series[0], "more bounding paths should not increase iterations"


@pytest.mark.paper_figure("fig25")
def test_fig25_iterations_vs_tau(scale, benchmark):
    name = scale.datasets[0]
    k = max(scale.k_values)
    rows = []
    series = []
    for tau in scale.tau_values:
        value = mean_iterations(name, scale, xi=1, alpha=0.3, tau=tau, k=k,
                                num_queries=scale.num_queries)
        series.append(value)
        rows.append([name, f"{int(tau * 100)}%", round(value, 2)])

    benchmark.pedantic(
        lambda: mean_iterations(name, scale, xi=1, alpha=0.3, tau=scale.tau_values[0],
                                k=k, num_queries=2),
        rounds=1, iterations=1,
    )
    print_experiment(
        f"Figure 25: #iterations vs tau (k={k}, alpha=30%, xi=1, scaled)",
        ["dataset", "tau", "mean iterations"],
        rows,
        notes="paper: iterations increase with the weight-variation range",
    )
    assert series[-1] >= series[0] * 0.8, "larger tau should not reduce iterations materially"


@pytest.mark.paper_figure("fig26")
def test_fig26_iterations_vs_k(scale, benchmark):
    name = scale.datasets[0]
    rows = []
    series = []
    for k in scale.k_values:
        value = mean_iterations(name, scale, xi=1, alpha=0.3, tau=0.5, k=k,
                                num_queries=scale.num_queries)
        series.append(value)
        rows.append([name, k, round(value, 2)])

    benchmark.pedantic(
        lambda: mean_iterations(name, scale, xi=1, alpha=0.3, tau=0.5,
                                k=scale.k_values[0], num_queries=2),
        rounds=1, iterations=1,
    )
    print_experiment(
        "Figure 26: #iterations vs k (alpha=30%, tau=50%, xi=1, scaled)",
        ["dataset", "k", "mean iterations"],
        rows,
        notes="paper: iterations grow slowly with k",
    )
    assert series[-1] >= series[0], "iterations should not shrink as k grows"


@pytest.mark.paper_figure("fig27")
def test_fig27_iterations_vs_alpha(scale, benchmark):
    name = scale.datasets[0]
    k = max(scale.k_values)
    rows = []
    series = []
    for alpha in scale.alpha_values:
        value = mean_iterations(name, scale, xi=1, alpha=alpha, tau=0.9, k=k,
                                num_queries=scale.num_queries)
        series.append(value)
        rows.append([name, f"{int(alpha * 100)}%", round(value, 2)])

    benchmark.pedantic(
        lambda: mean_iterations(name, scale, xi=1, alpha=scale.alpha_values[0],
                                tau=0.9, k=k, num_queries=2),
        rounds=1, iterations=1,
    )
    print_experiment(
        f"Figure 27: #iterations vs alpha (k={k}, tau=90%, xi=1, scaled)",
        ["dataset", "alpha", "mean iterations"],
        rows,
        notes="paper: effect of alpha is dataset-dependent but iterations stay bounded",
    )
    assert all(value >= 1 for value in series)

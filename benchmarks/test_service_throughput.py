"""Serving-layer throughput: served queries/sec with the cache on vs off.

Not a paper figure — the paper only reports offline batch metrics — but the
serving layer added on top (result cache, coalescing, micro-batching) needs
its own perf baseline so future PRs can tell whether they moved it.  The
benchmark replays the same mixed update/query trace (repeating
origin/destination pairs, periodic traffic snapshots) through a
:class:`~repro.service.server.KSPService` once with the result cache enabled
and once without, and reports served queries/sec plus latency percentiles
for both configurations.

Paper map: ``docs/paper_map.md`` ties every benchmark to its figure/table.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import print_experiment, write_bench_json
from repro.dynamics import TrafficModel
from repro.graph import road_network
from repro.service import KSPService, generate_trace, replay
from repro.workloads import YenEngine


def _run(graph_seed, side, num_queries, update_rounds, enable_cache):
    graph = road_network(side, side, seed=graph_seed)
    traffic = TrafficModel(graph, alpha=0.05, tau=0.3, seed=graph_seed)
    service = KSPService(
        graph,
        YenEngine(graph),
        traffic=traffic,
        enable_cache=enable_cache,
        queue_capacity=max(64, num_queries),
    )
    trace = generate_trace(
        graph,
        num_queries=num_queries,
        update_rounds=update_rounds,
        k=2,
        seed=graph_seed,
        repeat_fraction=0.6,
    )
    started = time.perf_counter()
    outcome = replay(service, trace, validate=True)
    elapsed = time.perf_counter() - started
    service.close()
    assert outcome.stale_served == 0
    return outcome, elapsed


@pytest.mark.paper_figure("service")
def test_service_throughput_cache_on_vs_off(scale, benchmark):
    side = 10 if scale.name == "quick" else 16
    num_queries = 300 if scale.name == "quick" else 1000
    update_rounds = 30 if scale.name == "quick" else 100

    rows = []
    throughputs = {}
    elapsed_by_cache = {}
    for enable_cache in (True, False):
        outcome, elapsed = _run(23, side, num_queries, update_rounds, enable_cache)
        report = outcome.report
        qps = outcome.num_served / elapsed if elapsed else float("inf")
        throughputs[enable_cache] = qps
        elapsed_by_cache[enable_cache] = elapsed
        rows.append(
            [
                "on" if enable_cache else "off",
                outcome.num_served,
                round(qps, 1),
                round(report.hit_rate, 3),
                report.unique_computations,
                round(report.latency_p50_ms, 3),
                round(report.latency_p99_ms, 3),
            ]
        )

    def kernel():
        return _run(23, side, num_queries // 3, update_rounds // 3, True)

    benchmark.pedantic(kernel, rounds=1, iterations=1)

    print_experiment(
        "Serving layer: throughput and latency, result cache on vs off",
        ["cache", "served", "queries/s", "hit rate", "computations", "p50 (ms)", "p99 (ms)"],
        rows,
        notes="same mixed trace (60% repeating OD pairs, periodic snapshots) both runs; "
        "zero stale results asserted in both configurations",
    )
    # Machine-readable perf trajectory: cache-off is the baseline, cache-on
    # the serving configuration; qps is the cache-on throughput.
    write_bench_json(
        "service",
        config={
            "scale": scale.name,
            "side": side,
            "queries": num_queries,
            "update_rounds": update_rounds,
            "repeat_fraction": 0.6,
        },
        baseline_ms=elapsed_by_cache[False] * 1e3,
        new_ms=elapsed_by_cache[True] * 1e3,
        qps=throughputs[True],
    )

    # Caching must not make serving slower on a repeat-heavy trace.
    assert throughputs[True] >= throughputs[False] * 0.9

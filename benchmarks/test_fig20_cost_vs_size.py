"""Figure 20: DTLP build and maintenance time vs graph size Ng.

The paper carves subgraphs of 50k-250k vertices out of COL and shows that
both the construction time and the maintenance time of DTLP grow roughly
linearly with the graph size.  Here the graph sizes are scaled grids of
increasing size.

Paper map: ``docs/paper_map.md`` ties every benchmark to its figure/table.
"""

from __future__ import annotations

import pytest

from repro.bench import print_experiment
from repro.core import DTLP, DTLPConfig
from repro.dynamics import TrafficModel
from repro.graph import road_network


@pytest.mark.paper_figure("fig20")
def test_fig20_build_and_maintenance_vs_graph_size(scale, benchmark):
    sides = (10, 14, 18, 22, 26) if scale.name == "quick" else (12, 17, 22, 27, 32)
    rows = []
    build_times = []
    for side in sides:
        graph = road_network(side, side, seed=31)
        dtlp = DTLP(graph, DTLPConfig(z=32, xi=5)).build()
        model = TrafficModel(graph, alpha=0.5, tau=0.5, seed=13)
        updates = model.advance()
        maintenance = dtlp.handle_updates(updates)
        rows.append(
            [
                graph.num_vertices,
                graph.num_edges,
                round(dtlp.build_seconds, 4),
                round(maintenance, 4),
            ]
        )
        build_times.append(dtlp.build_seconds)

    def kernel():
        graph = road_network(sides[0], sides[0], seed=31)
        return DTLP(graph, DTLPConfig(z=32, xi=5)).build()

    benchmark.pedantic(kernel, rounds=1, iterations=1)

    print_experiment(
        "Figure 20: DTLP build/maintenance time vs graph size Ng (xi=5, alpha=50%)",
        ["Ng (vertices)", "#edges", "build time (s)", "maintenance time (s)"],
        rows,
        notes="paper: both costs grow roughly linearly with the graph size",
    )
    # The largest graph should cost more to build than the smallest one.
    assert build_times[-1] > build_times[0]

"""Table 3: number of vertices in the skeleton graph with varying z.

The paper's Table 3 shows that the skeleton graph shrinks as the subgraph
size threshold z grows (fewer, larger subgraphs have relatively fewer
boundary vertices).  This benchmark regenerates the table for the scaled
datasets and asserts the monotone trend.

Paper map: ``docs/paper_map.md`` ties every benchmark to its figure/table.
"""

from __future__ import annotations

import pytest

from repro.bench import build_dataset, print_experiment
from repro.core import DTLP, DTLPConfig


@pytest.mark.paper_figure("table3")
def test_table3_skeleton_size_vs_z(scale, benchmark):
    rows = []
    trend_ok = True
    for name in scale.datasets:
        graph = build_dataset(name, scale=scale.graph_scale)
        sizes = []
        for z in scale.z_values[name]:
            dtlp = DTLP(graph, DTLPConfig(z=z, xi=1)).build()
            sizes.append(dtlp.statistics().skeleton_vertices)
        rows.append([name] + sizes)
        # Larger z should not increase the number of boundary vertices much;
        # require the last grid point to be below the first.
        trend_ok = trend_ok and sizes[-1] <= sizes[0]

    def kernel():
        name = scale.datasets[0]
        graph = build_dataset(name, scale=scale.graph_scale)
        return DTLP(graph, DTLPConfig(z=scale.z_values[name][0], xi=1)).build()

    benchmark.pedantic(kernel, rounds=1, iterations=1)

    header = ["dataset"] + [f"z={z}" for z in scale.z_values[scale.datasets[0]]]
    print_experiment(
        "Table 3: |G_lambda| (number of skeleton vertices) with varying z (scaled)",
        header,
        rows,
        notes="paper: skeleton shrinks as z grows (e.g. NY 32.5k at z=100 down to 20.8k at z=300)",
    )
    assert trend_ok, "skeleton graph should shrink (or stay flat) as z grows"

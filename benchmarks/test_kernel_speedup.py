"""Kernel microbenchmark: dict-of-dict reference vs array-backed snapshot.

Measures the two compute paths the rest of the system chooses between (see
``ARCHITECTURE.md``): the dict-based graph objects driven through the
generic neighbour adapter, and :class:`~repro.kernel.snapshot.CSRSnapshot`
driven through the array kernel.  Three workloads on a ~5k-vertex synthetic
road network:

* point-to-point shortest-path queries (early-exit Dijkstra + path
  reconstruction) — the repository's hottest primitive,
* full single-source Dijkstra (labelled-dictionary output, as consumed by
  FindKSP's SPT build),
* Yen's k shortest simple paths.

The snapshot build cost is reported separately so the amortisation argument
is visible.  Acceptance floor: snapshot shortest-path Dijkstra ≥ 2x the
dict path.

Paper map: ``docs/paper_map.md`` ties every benchmark to its figure/table.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.algorithms.dijkstra import dijkstra, shortest_path
from repro.algorithms.yen import yen_k_shortest_paths
from repro.bench import print_experiment, write_bench_json
from repro.graph import road_network
from repro.kernel import CSRSnapshot


def _best_of(callable_, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.mark.paper_figure("kernel")
def test_kernel_speedup(scale, benchmark) -> None:
    side = 71 if scale.name == "quick" else 100  # 71^2 ~ 5k vertices
    graph = road_network(side, side, seed=3)
    build_started = time.perf_counter()
    snapshot = CSRSnapshot(graph)
    build_seconds = time.perf_counter() - build_started

    rng = random.Random(1)
    num = graph.num_vertices
    pairs = [(rng.randrange(num), rng.randrange(num)) for _ in range(20)]
    yen_pairs = pairs[:3]

    # The two paths must agree exactly before timing means anything.
    for source, target in pairs[:5]:
        assert shortest_path(graph, source, target) == shortest_path(
            snapshot, source, target
        )
        assert dijkstra(graph, source) == dijkstra(snapshot, source)

    repeats = 3 if scale.name == "quick" else 5
    sp_dict = _best_of(
        lambda: [shortest_path(graph, s, t) for s, t in pairs], repeats
    )
    sp_snap = _best_of(
        lambda: [shortest_path(snapshot, s, t) for s, t in pairs], repeats
    )
    full_dict = _best_of(lambda: [dijkstra(graph, s) for s, _ in pairs[:5]], repeats)
    full_snap = _best_of(lambda: [dijkstra(snapshot, s) for s, _ in pairs[:5]], repeats)
    yen_dict = _best_of(
        lambda: [yen_k_shortest_paths(graph, s, t, 3) for s, t in yen_pairs], 1
    )
    yen_snap = _best_of(
        lambda: [yen_k_shortest_paths(snapshot, s, t, 3) for s, t in yen_pairs], 1
    )

    benchmark.pedantic(
        lambda: [shortest_path(snapshot, s, t) for s, t in pairs],
        rounds=1,
        iterations=1,
    )

    def row(name, dict_seconds, snap_seconds, queries):
        return [
            name,
            queries,
            round(dict_seconds * 1e3, 2),
            round(snap_seconds * 1e3, 2),
            round(dict_seconds / snap_seconds, 2),
        ]

    print_experiment(
        f"Kernel microbenchmark: dict vs CSRSnapshot ({graph.num_vertices} vertices, "
        f"{graph.num_edges} edges; snapshot build {build_seconds * 1e3:.1f} ms)",
        ["workload", "#queries", "dict (ms)", "snapshot (ms)", "speedup"],
        [
            row("shortest-path Dijkstra (s->t)", sp_dict, sp_snap, len(pairs)),
            row("full Dijkstra (labelled dicts)", full_dict, full_snap, 5),
            row("Yen k=3", yen_dict, yen_snap, len(yen_pairs)),
        ],
        notes="identical outputs asserted before timing; snapshot build amortises "
        "across every query until the next topology change",
    )

    # Machine-readable perf trajectory: the headline point-to-point Dijkstra
    # comparison, uploaded as a CI artifact (see .github/workflows/ci.yml).
    write_bench_json(
        "kernel",
        config={
            "scale": scale.name,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "queries": len(pairs),
            "workload": "shortest-path dijkstra",
        },
        baseline_ms=sp_dict * 1e3,
        new_ms=sp_snap * 1e3,
        qps=len(pairs) / sp_snap if sp_snap else None,
    )

    # Acceptance floor for the tentpole: the array kernel answers
    # point-to-point Dijkstra queries at least twice as fast.
    assert sp_dict / sp_snap >= 2.0, (
        f"snapshot Dijkstra speedup {sp_dict / sp_snap:.2f}x below the 2x floor"
    )
    # The other paths must at least not regress.
    assert full_dict / full_snap >= 1.2
    assert yen_dict / yen_snap >= 1.2

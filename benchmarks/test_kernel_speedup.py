"""Kernel microbenchmark: dict reference vs snapshot vs batched fast tier.

Measures the compute paths the rest of the system chooses between (see
``ARCHITECTURE.md``, "Batched kernel & identity tiers"): the dict-based
graph objects driven through the generic neighbour adapter, the
:class:`~repro.kernel.snapshot.CSRSnapshot` heap kernel, and the ``fast``
tier's batched wavefront kernel.  Workloads on a ~5k-vertex synthetic road
network:

* point-to-point shortest-path queries (early-exit Dijkstra + path
  reconstruction) — the repository's hottest primitive — answered per-pair
  on dict/snapshot and as one micro-batch by the fast tier,
* full single-source Dijkstra (labelled-dictionary output, as consumed by
  FindKSP's SPT build),
* Yen's k shortest simple paths,
* a batched multi-source case: one shared flat search structure
  (:func:`~repro.kernel.wavefront.dijkstra_arrays_batch`) vs N independent
  heap searches over the same sources.

The snapshot build cost is reported separately so the amortisation argument
is visible.  Acceptance floors: snapshot shortest-path Dijkstra ≥ 2x dict,
fast batched tier ≥ 3x dict, batch ≥ 2x its per-source equivalent.

Paper map: ``docs/paper_map.md`` ties every benchmark to its figure/table.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.algorithms.dijkstra import dijkstra, shortest_path
from repro.algorithms.yen import yen_k_shortest_paths
from repro.bench import print_experiment
from repro.bench.benchjson import write_bench_rows
from repro.graph import road_network
from repro.kernel import CSRSnapshot
from repro.kernel.wavefront import (
    batch_shortest_paths,
    dijkstra_arrays_batch,
    numpy_available,
    wavefront_sssp,
)


def _best_of(callable_, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.mark.paper_figure("kernel")
def test_kernel_speedup(scale, benchmark) -> None:
    side = 71 if scale.name == "quick" else 100  # 71^2 ~ 5k vertices
    graph = road_network(side, side, seed=3)
    build_started = time.perf_counter()
    snapshot = CSRSnapshot(graph)
    build_seconds = time.perf_counter() - build_started

    rng = random.Random(1)
    num = graph.num_vertices
    pairs = [(rng.randrange(num), rng.randrange(num)) for _ in range(20)]
    yen_pairs = pairs[:3]
    have_numpy = numpy_available()

    # The two bit-identical paths must agree exactly before timing means
    # anything; the fast tier must match their distances (its paths are
    # tie-order free, so only the distance is compared).
    for source, target in pairs[:5]:
        assert shortest_path(graph, source, target) == shortest_path(
            snapshot, source, target
        )
        assert dijkstra(graph, source) == dijkstra(snapshot, source)
    if have_numpy:
        reference = [shortest_path(snapshot, s, t) for s, t in pairs]
        batched = batch_shortest_paths(snapshot, pairs)
        assert [p.distance for p in batched] == [p.distance for p in reference]

    repeats = 3 if scale.name == "quick" else 5
    sp_dict = _best_of(
        lambda: [shortest_path(graph, s, t) for s, t in pairs], repeats
    )
    sp_snap = _best_of(
        lambda: [shortest_path(snapshot, s, t) for s, t in pairs], repeats
    )
    sp_fast = (
        _best_of(lambda: batch_shortest_paths(snapshot, pairs), repeats)
        if have_numpy
        else None
    )
    full_dict = _best_of(lambda: [dijkstra(graph, s) for s, _ in pairs[:5]], repeats)
    full_snap = _best_of(lambda: [dijkstra(snapshot, s) for s, _ in pairs[:5]], repeats)
    yen_dict = _best_of(
        lambda: [yen_k_shortest_paths(graph, s, t, 3) for s, t in yen_pairs], 1
    )
    yen_snap = _best_of(
        lambda: [yen_k_shortest_paths(snapshot, s, t, 3) for s, t in yen_pairs], 1
    )

    benchmark.pedantic(
        lambda: [shortest_path(snapshot, s, t) for s, t in pairs],
        rounds=1,
        iterations=1,
    )

    def row(name, dict_seconds, snap_seconds, queries):
        return [
            name,
            queries,
            round(dict_seconds * 1e3, 2),
            round(snap_seconds * 1e3, 2),
            round(dict_seconds / snap_seconds, 2),
        ]

    rows = [
        row("shortest-path Dijkstra (s->t)", sp_dict, sp_snap, len(pairs)),
        row("full Dijkstra (labelled dicts)", full_dict, full_snap, 5),
        row("Yen k=3", yen_dict, yen_snap, len(yen_pairs)),
    ]
    if sp_fast is not None:
        rows.insert(
            1, row("fast tier: batched s->t (vs dict)", sp_dict, sp_fast, len(pairs))
        )
    print_experiment(
        f"Kernel microbenchmark: dict vs CSRSnapshot vs fast "
        f"({graph.num_vertices} vertices, {graph.num_edges} edges; "
        f"snapshot build {build_seconds * 1e3:.1f} ms)",
        ["workload", "#queries", "baseline (ms)", "new (ms)", "speedup"],
        rows,
        notes="identical distances asserted before timing; snapshot build "
        "amortises across every query until the next topology change; the "
        "fast tier answers the whole pair batch in one multi-source run",
    )

    # Machine-readable perf trajectory: the headline point-to-point Dijkstra
    # comparison per kernel tier, uploaded as a CI artifact (see
    # .github/workflows/ci.yml).  Both rows share the dict baseline.
    base_config = {
        "scale": scale.name,
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "queries": len(pairs),
        "workload": "shortest-path dijkstra",
    }
    bench_rows = [
        {
            "config": dict(base_config, kernel_tier="snapshot"),
            "baseline_ms": sp_dict * 1e3,
            "new_ms": sp_snap * 1e3,
            "qps": len(pairs) / sp_snap if sp_snap else None,
        }
    ]
    if sp_fast is not None:
        bench_rows.append(
            {
                "config": dict(
                    base_config, kernel_tier="fast", batch_size=len(pairs)
                ),
                "baseline_ms": sp_dict * 1e3,
                "new_ms": sp_fast * 1e3,
                "qps": len(pairs) / sp_fast if sp_fast else None,
            }
        )
    write_bench_rows("kernel", bench_rows)

    # Acceptance floors: the array kernel answers point-to-point Dijkstra
    # queries at least twice as fast as dict, and the batched fast tier at
    # least three times as fast (the PR-7 tentpole target).
    assert sp_dict / sp_snap >= 2.0, (
        f"snapshot Dijkstra speedup {sp_dict / sp_snap:.2f}x below the 2x floor"
    )
    if sp_fast is not None:
        assert sp_dict / sp_fast >= 3.0, (
            f"fast batched speedup {sp_dict / sp_fast:.2f}x below the 3x floor"
        )
    # The other paths must at least not regress.
    assert full_dict / full_snap >= 1.2
    assert yen_dict / yen_snap >= 1.2


@pytest.mark.skipif(not numpy_available(), reason="fast tier requires numpy")
def test_batched_multi_source_speedup(scale, benchmark) -> None:
    """One shared flat structure vs N independent searches (same sources)."""
    side = 71 if scale.name == "quick" else 100
    graph = road_network(side, side, seed=3)
    snapshot = CSRSnapshot(graph)
    rng = random.Random(2)
    sources = sorted(rng.sample(range(snapshot.num_vertices), 16))

    # Distance identity first: each batch row must equal its own full
    # single-source wavefront (itself bitwise equal to the heap kernel —
    # tests/test_fast_kernel_properties.py).
    dist, _pred = dijkstra_arrays_batch(snapshot, sources)
    for row_index, source in enumerate(sources):
        single, _ = wavefront_sssp(snapshot, source)
        assert list(dist[row_index]) == list(single)

    repeats = 3 if scale.name == "quick" else 5
    independent = _best_of(
        lambda: [wavefront_sssp(snapshot, source) for source in sources], repeats
    )
    batched = _best_of(lambda: dijkstra_arrays_batch(snapshot, sources), repeats)
    benchmark.pedantic(
        lambda: dijkstra_arrays_batch(snapshot, sources), rounds=1, iterations=1
    )

    print_experiment(
        f"Batched multi-source wavefront ({snapshot.num_vertices} vertices, "
        f"{len(sources)} sources)",
        ["strategy", "#sources", "time (ms)", "speedup"],
        [
            ["independent wavefronts", len(sources), round(independent * 1e3, 2), 1.0],
            [
                "one shared batch",
                len(sources),
                round(batched * 1e3, 2),
                round(independent / batched, 2),
            ],
        ],
        notes="identical per-source distance rows asserted before timing; the "
        "batch pays each sweep's numpy overhead once for all sources",
    )

    # Sharing the frontier structure must amortise the per-sweep overhead.
    assert independent / batched >= 2.0, (
        f"batched multi-source speedup {independent / batched:.2f}x "
        "below the 2x floor"
    )

"""Figures 28-31: KSP-DG query processing time vs k and z, per dataset.

The paper feeds 1000 queries into the system and measures the total
processing time for several subgraph sizes z and several k, observing a
U-shape in z (too-small subgraphs mean a big skeleton graph; too-large
subgraphs make per-subgraph Yen expensive) and a roughly linear growth in k.
The scaled version uses the simulated cluster's parallel completion time as
the processing-time metric.

Paper map: ``docs/paper_map.md`` ties every benchmark to its figure/table.
"""

from __future__ import annotations

import pytest

from repro.bench import build_dataset, make_queries, print_experiment
from repro.core import DTLP, DTLPConfig
from repro.distributed import StormTopology


def batch_time(name, scale, z, k, num_workers=4):
    graph = build_dataset(name, scale=scale.graph_scale)
    dtlp = DTLP(graph, DTLPConfig(z=z, xi=3)).build()
    topology = StormTopology(dtlp, num_workers=num_workers)
    queries = make_queries(graph, scale.num_queries, k=k, seed=19)
    report = topology.run_queries(queries)
    return report


@pytest.mark.paper_figure("fig28-31")
def test_fig28_31_processing_time_vs_k_and_z(scale, benchmark):
    rows = []
    per_dataset = {}
    k_grid = scale.k_values
    for name in scale.datasets:
        z_grid = scale.z_values[name][:3]
        times = {}
        for z in z_grid:
            for k in k_grid:
                report = batch_time(name, scale, z=z, k=k)
                times[(z, k)] = report.makespan_seconds
                rows.append(
                    [
                        name,
                        z,
                        k,
                        round(report.makespan_seconds, 4),
                        round(report.total_compute_seconds, 4),
                        round(report.mean_iterations, 1),
                    ]
                )
        per_dataset[name] = (z_grid, times)

    benchmark.pedantic(
        lambda: batch_time(scale.datasets[0], scale, z=scale.z_values[scale.datasets[0]][1],
                           k=k_grid[0]),
        rounds=1, iterations=1,
    )

    print_experiment(
        f"Figures 28-31: query processing time vs z and k (Nq={scale.num_queries}, xi=3, scaled)",
        ["dataset", "z", "k", "parallel time (s)", "total compute (s)", "mean iterations"],
        rows,
        notes="paper: time grows roughly linearly in k; U-shaped in z",
    )
    # Processing time should grow with k for every dataset at the default z.
    for name, (z_grid, times) in per_dataset.items():
        middle_z = z_grid[min(1, len(z_grid) - 1)]
        assert times[(middle_z, k_grid[-1])] >= times[(middle_z, k_grid[0])] * 0.8

"""Partition quality and cold start: min-cut vs BFS, store load vs rebuild.

Not a paper figure — the paper's Section 3.3 partitions with arbitrary-start
BFS and never revisits the choice, but everything downstream scales with
the quantity that partitioner ignores: boundary vertices drive DTLP index
size, CANDS table builds and every boundary-pair search a query performs.
This benchmark measures that leverage on a clustered road network (city
grids joined by sparse highways — the two-scale structure of the paper's
continental datasets, where partition quality actually matters; uniform
grids cap any partitioner's gap at around ten percent):

* **boundary vertices** — ``partition_mincut`` (multilevel heavy-edge
  coarsening + KL/FM refinement) vs the paper's ``partition_graph`` BFS at
  the same ``z``.  Acceptance floor: at least a 25% reduction.
* **KSP-DG batch throughput** — the same query batch over a DTLP built on
  each partition; distances asserted identical first (answers are a
  function of the graph, not the partition).
* **cold start** — ``PartitionStore`` load vs full partition + DTLP
  rebuild, answers asserted identical.  Acceptance floor: load at least
  5x faster, the O(load)-not-O(rebuild) contract of ``repro.store``.

Emits ``BENCH_partition.json``: one ``kind: "counts"`` row (boundary
facts) and two timing rows (batch qps, cold start).

Paper map: ``docs/paper_map.md`` ties every benchmark to its figure/table.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import print_experiment, write_bench_rows
from repro.core import DTLP, DTLPConfig
from repro.distributed import StormTopology
from repro.graph import clustered_road_network, partition_graph, partition_mincut
from repro.store import PartitionStore
from repro.workloads import QueryGenerator


def _run_batch(dtlp, queries):
    """One cold serial KSP-DG batch; returns (wall seconds, signature)."""
    topology = StormTopology(dtlp, num_workers=4)
    with topology:
        started = time.perf_counter()
        report = topology.run_queries(queries)
        elapsed = time.perf_counter() - started
    signature = [
        [(path.vertices, path.distance) for path in result.paths]
        for result in report.results
    ]
    return elapsed, signature


@pytest.mark.paper_figure("partition")
def test_partition_quality(scale, benchmark, tmp_path) -> None:
    if scale.name == "quick":
        clusters_per_side, rows, cols, z = 3, 8, 8, 64
    else:
        clusters_per_side, rows, cols, z = 4, 10, 10, 100
    xi = 3
    graph = clustered_road_network(
        clusters_per_side=clusters_per_side,
        cluster_rows=rows,
        cluster_cols=cols,
        seed=7,
    )
    queries = QueryGenerator(graph, seed=11, min_hops=4).generate(16, k=3)

    # --- boundary-vertex counts at equal z --------------------------------
    bfs_partition = partition_graph(graph, z)
    mincut_partition = partition_mincut(graph, z)
    bfs_boundary = len(bfs_partition.boundary_vertices)
    mincut_boundary = len(mincut_partition.boundary_vertices)
    reduction = 1.0 - mincut_boundary / bfs_boundary

    # --- KSP-DG batch, same queries, each partition -----------------------
    timings = {}
    signatures = {}
    dtlps = {}
    for name in ("bfs", "mincut"):
        dtlp = DTLP(graph, DTLPConfig(z=z, xi=xi, partitioner=name)).build()
        dtlps[name] = dtlp
        timings[name], signatures[name] = _run_batch(dtlp, queries)

    # Identity first: the partition must not change what queries return.
    bfs_distances = [[d for _, d in result] for result in signatures["bfs"]]
    mincut_distances = [[d for _, d in result] for result in signatures["mincut"]]
    assert mincut_distances == bfs_distances, "partitioner changed query distances"

    # --- cold start: store load vs full rebuild ---------------------------
    store_root = tmp_path / "store"
    PartitionStore.save(dtlps["mincut"], store_root)

    started = time.perf_counter()
    rebuilt = DTLP(graph, DTLPConfig(z=z, xi=xi, partitioner="mincut")).build()
    rebuild_seconds = time.perf_counter() - started

    started = time.perf_counter()
    loaded = PartitionStore(store_root).load(graph)
    load_seconds = time.perf_counter() - started

    _, rebuilt_signature = _run_batch(rebuilt, queries)
    _, loaded_signature = _run_batch(loaded, queries)
    assert loaded_signature == rebuilt_signature, "store load changed answers"

    benchmark.pedantic(
        lambda: PartitionStore(store_root).load(graph), rounds=1, iterations=1
    )

    print_experiment(
        f"Partition quality at z={z} on a clustered road network "
        f"({graph.num_vertices} vertices, {graph.num_edges} edges, "
        f"{clusters_per_side}x{clusters_per_side} cities)",
        ["metric", "bfs", "mincut", "change"],
        [
            [
                "boundary vertices",
                bfs_boundary,
                mincut_boundary,
                f"-{reduction:.0%}",
            ],
            [
                "partitions",
                bfs_partition.num_subgraphs,
                mincut_partition.num_subgraphs,
                "",
            ],
            [
                f"KSP-DG batch of {len(queries)} (ms)",
                round(timings["bfs"] * 1e3, 1),
                round(timings["mincut"] * 1e3, 1),
                f"{timings['bfs'] / timings['mincut']:.2f}x",
            ],
            [
                "cold start (ms)",
                round(rebuild_seconds * 1e3, 1),
                round(load_seconds * 1e3, 1),
                f"{rebuild_seconds / load_seconds:.2f}x (store load)",
            ],
        ],
        notes="identical distances asserted between partitions and identical "
        "answers between store load and fresh rebuild before any timing is "
        "trusted; cold start compares a full partition+DTLP build against "
        "PartitionStore.load on the saved index",
    )

    config = {
        "scale": scale.name,
        "network": "clustered",
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "z": z,
        "xi": xi,
    }
    write_bench_rows(
        "partition",
        [
            {
                "config": dict(config, comparison="boundary_vertices"),
                "counts": {
                    "bfs_boundary": bfs_boundary,
                    "mincut_boundary": mincut_boundary,
                    "bfs_partitions": bfs_partition.num_subgraphs,
                    "mincut_partitions": mincut_partition.num_subgraphs,
                },
            },
            {
                "config": dict(
                    config, comparison="kspdg_batch_bfs_vs_mincut",
                    queries=len(queries), k=3,
                ),
                "baseline_ms": timings["bfs"] * 1e3,
                "new_ms": timings["mincut"] * 1e3,
                "qps": len(queries) / timings["mincut"],
            },
            {
                "config": dict(config, comparison="coldstart_rebuild_vs_load"),
                "baseline_ms": rebuild_seconds * 1e3,
                "new_ms": load_seconds * 1e3,
            },
        ],
    )

    # Acceptance floors (ISSUE 8).
    assert reduction >= 0.25, (
        f"min-cut boundary reduction {reduction:.0%} below the 25% floor "
        f"({bfs_boundary} -> {mincut_boundary})"
    )
    assert rebuild_seconds / load_seconds >= 5.0, (
        f"store cold load only {rebuild_seconds / load_seconds:.1f}x faster "
        f"than a full rebuild (floor: 5x)"
    )

"""Figures 42-46 and the Section 6.6 load-balance check: horizontal scalability.

* Figure 42 — DTLP building time falls as servers are added (per-subgraph
  index builds are spread across workers).
* Figure 43 — query batch processing time falls as servers are added.
* Figure 44 — the same holds for every k.
* Figure 45 — KSP-DG stays ahead of the replicated centralized baselines as
  the cluster grows.
* Figure 46 — relative speedups of all three algorithms grow roughly
  linearly with the number of servers.
* Section 6.6 (text) — the CPU and memory load spread across workers stays
  small; the simulated-cluster report exposes the same quantities.

Paper map: ``docs/paper_map.md`` ties every benchmark to its figure/table.
"""

from __future__ import annotations

import pytest

from repro.bench import DATASET_DEFAULT_Z, build_dataset, make_queries, print_experiment
from repro.core import DTLP, DTLPConfig
from repro.distributed import StormTopology, distributed_build_report
from repro.workloads import BatchRunner, YenEngine


@pytest.mark.paper_figure("fig42")
def test_fig42_build_time_vs_servers(scale, benchmark):
    rows = []
    monotone = True
    for name in scale.datasets:
        graph = build_dataset(name, scale=scale.graph_scale)
        config = DTLPConfig(z=DATASET_DEFAULT_Z[name], xi=5)
        times = []
        for servers in scale.server_counts:
            report = distributed_build_report(graph, config, num_workers=servers)
            times.append(report.parallel_build_seconds)
            rows.append([name, servers, round(report.parallel_build_seconds, 4)])
        monotone = monotone and times[-1] <= times[0] * 1.1

    name = scale.datasets[0]
    benchmark.pedantic(
        lambda: distributed_build_report(
            build_dataset(name, scale=scale.graph_scale),
            DTLPConfig(z=DATASET_DEFAULT_Z[name], xi=5),
            num_workers=scale.server_counts[0],
        ),
        rounds=1, iterations=1,
    )
    print_experiment(
        "Figure 42: DTLP building time vs number of servers (xi=5, scaled)",
        ["dataset", "#servers", "parallel build time (s)"],
        rows,
        notes="paper: building time decreases as servers are added",
    )
    assert monotone


@pytest.mark.paper_figure("fig43-44")
def test_fig43_44_processing_time_vs_servers(scale, benchmark):
    name = scale.datasets[0]
    graph = build_dataset(name, scale=scale.graph_scale)
    dtlp = DTLP(graph, DTLPConfig(z=DATASET_DEFAULT_Z[name], xi=3)).build()

    rows = []
    makespans_by_k = {}
    for k in scale.k_values:
        queries = make_queries(graph, scale.num_queries, k=k, seed=83)
        times = []
        # pruning=False everywhere in this file: the dtlp is shared across
        # every measured server count, and the cross-query partial-KSP memo
        # (PR 5) would let later counts run warm — the curve must measure
        # parallel scale-out, not cache warmth.
        for servers in scale.server_counts:
            topology = StormTopology(dtlp, num_workers=servers, pruning=False)
            report = topology.run_queries(queries)
            times.append(report.makespan_seconds)
            rows.append([name, servers, k, round(report.makespan_seconds, 4)])
        makespans_by_k[k] = times

    benchmark.pedantic(
        lambda: StormTopology(dtlp, num_workers=scale.server_counts[0], pruning=False).run_queries(
            make_queries(graph, 2, k=scale.k_values[0], seed=83)
        ),
        rounds=1, iterations=1,
    )
    print_experiment(
        f"Figures 43-44: processing time vs number of servers ({name}, Nq={scale.num_queries}, scaled)",
        ["dataset", "#servers", "k", "parallel time (s)"],
        rows,
        notes="paper: processing time drops as servers are added, for every k",
    )
    for k, times in makespans_by_k.items():
        assert times[-1] <= times[0] * 1.2, f"k={k}: more servers should not slow processing"


@pytest.mark.paper_figure("fig45-46")
def test_fig45_46_scalability_comparison_and_speedups(scale, benchmark):
    name = scale.datasets[0]
    graph = build_dataset(name, scale=scale.graph_scale)
    dtlp = DTLP(graph, DTLPConfig(z=DATASET_DEFAULT_Z[name], xi=3)).build()
    queries = make_queries(graph, scale.num_queries, k=2, seed=89)

    rows = []
    speedup_rows = []
    ksp_dg_times = []
    yen_times = []
    for servers in scale.server_counts:
        topology = StormTopology(dtlp, num_workers=servers, pruning=False)
        ksp_dg_report = topology.run_queries(queries)
        yen_report = BatchRunner(YenEngine(graph, prune=False), num_servers=servers).run(queries)
        ksp_dg_times.append(ksp_dg_report.makespan_seconds)
        yen_times.append(yen_report.parallel_seconds)
        rows.append(
            [
                servers,
                round(ksp_dg_report.makespan_seconds, 4),
                round(yen_report.parallel_seconds, 4),
            ]
        )

    for index, servers in enumerate(scale.server_counts):
        speedup_rows.append(
            [
                servers,
                round(ksp_dg_times[0] / max(ksp_dg_times[index], 1e-9), 2),
                round(yen_times[0] / max(yen_times[index], 1e-9), 2),
            ]
        )

    # Section 6.6 load balance on the largest cluster.
    topology = StormTopology(dtlp, num_workers=scale.server_counts[-1], pruning=False)
    report = topology.run_queries(queries)
    balance = report.load_balance

    benchmark.pedantic(
        lambda: StormTopology(dtlp, num_workers=scale.server_counts[-1], pruning=False).run_queries(queries[:2]),
        rounds=1, iterations=1,
    )

    print_experiment(
        f"Figure 45: scalability comparison ({name}, Nq={scale.num_queries}, k=2, scaled)",
        ["#servers", "KSP-DG (s)", "Yen replicated (s)"],
        rows,
        notes="paper: KSP-DG always outperforms the replicated centralized baselines",
    )
    print_experiment(
        "Figure 46: relative speedups vs number of servers (baseline = smallest cluster)",
        ["#servers", "KSP-DG speedup", "Yen speedup"],
        speedup_rows,
        notes="paper: relative speedup grows roughly linearly with the number of servers",
    )
    print_experiment(
        "Section 6.6: load balance across workers (largest cluster)",
        ["metric", "value"],
        [
            ["busy-time spread", round(balance["busy_spread"], 4)],
            ["memory spread", round(balance["memory_spread"], 4)],
        ],
        notes="paper: CPU utilisation spread < 6%, memory spread < 2% (absolute terms)",
    )
    # Speedups should be non-trivial on the largest cluster.
    assert ksp_dg_times[-1] <= ksp_dg_times[0] * 1.2

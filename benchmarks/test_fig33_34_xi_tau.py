"""Figures 33-34: query processing time vs xi and vs tau.

Figure 33 fixes a small query batch and shows the processing time falling as
xi grows (fewer iterations thanks to tighter bounds); Figure 34 shows the
processing time rising slowly with tau (looser bounds mean more iterations).
Both effects are driven by the iteration counts of Figures 24-25.

Paper map: ``docs/paper_map.md`` ties every benchmark to its figure/table.
"""

from __future__ import annotations

import pytest

from repro.bench import DATASET_DEFAULT_Z, build_dataset, make_queries, print_experiment
from repro.core import DTLP, DTLPConfig, KSPDG
from repro.dynamics import TrafficModel


def batch_seconds(name, scale, xi, tau, k, seed=53):
    """Total KSP-DG time for a small query batch after one traffic snapshot.

    Like the iteration sweeps (Figures 24-27), these per-parameter runs are
    dominated by loose-bound iterations, so they use a reduced graph scale,
    a small batch and congestion-style weight increases (the tight-bound
    regime §5.5 assumes); the xi/tau trends are what the figure reports.
    """
    graph_scale = min(scale.graph_scale, 0.5)
    graph = build_dataset(name, scale=graph_scale).snapshot()
    z = max(12, DATASET_DEFAULT_Z[name] // 2)
    dtlp = DTLP(graph, DTLPConfig(z=z, xi=xi)).build()
    graph.add_listener(dtlp.handle_updates)
    TrafficModel(graph, alpha=0.3, tau=tau, seed=seed, direction="increase").advance()
    engine = KSPDG(dtlp)
    queries = make_queries(graph, min(scale.num_queries, 6), k=k, seed=3)
    total = 0.0
    for query in queries:
        total += engine.query(query.source, query.target, query.k).elapsed_seconds
    return total


@pytest.mark.paper_figure("fig33")
def test_fig33_processing_time_vs_xi(scale, benchmark):
    name = scale.datasets[0]
    k = max(scale.k_values)
    rows = []
    series = []
    for xi in scale.xi_values:
        seconds = batch_seconds(name, scale, xi=xi, tau=0.9, k=k)
        series.append(seconds)
        rows.append([name, xi, k, round(seconds, 4)])

    benchmark.pedantic(
        lambda: batch_seconds(name, scale, xi=scale.xi_values[-1], tau=0.9, k=scale.k_values[0]),
        rounds=1, iterations=1,
    )
    print_experiment(
        f"Figure 33: processing time vs xi (alpha=30%, tau=90%, k={k}, scaled)",
        ["dataset", "xi", "k", "total query time (s)"],
        rows,
        notes="paper: processing time decreases with xi (fewer iterations)",
    )
    assert series[-1] <= series[0] * 1.5, "larger xi should not make queries much slower"


@pytest.mark.paper_figure("fig34")
def test_fig34_processing_time_vs_tau(scale, benchmark):
    name = scale.datasets[0]
    k = max(scale.k_values)
    rows = []
    series = []
    for tau in scale.tau_values:
        seconds = batch_seconds(name, scale, xi=3, tau=tau, k=k)
        series.append(seconds)
        rows.append([name, f"{int(tau * 100)}%", k, round(seconds, 4)])

    benchmark.pedantic(
        lambda: batch_seconds(name, scale, xi=3, tau=scale.tau_values[0], k=scale.k_values[0]),
        rounds=1, iterations=1,
    )
    print_experiment(
        f"Figure 34: processing time vs tau (alpha=30%, xi=3, k={k}, scaled)",
        ["dataset", "tau", "k", "total query time (s)"],
        rows,
        notes="paper: processing time increases slowly with tau",
    )
    assert series[-1] >= series[0] * 0.5, "larger tau should not make queries much faster"

"""Figures 15-18: DTLP construction cost (time and memory) with varying z.

The paper plots, for each dataset, the index building time and the memory
consumed by the EP-Index and the skeleton graph as the subgraph size z
varies, observing a U-shaped building time and growing EP-Index memory.
Figure 18 additionally compares directed vs undirected construction on CUSA
(directed costs roughly 2x because bounding paths are computed per
direction).

Paper map: ``docs/paper_map.md`` ties every benchmark to its figure/table.
"""

from __future__ import annotations

import pytest

from repro.bench import build_dataset, print_experiment
from repro.core import DTLP, DTLPConfig


@pytest.mark.paper_figure("fig15-17")
def test_fig15_17_construction_cost_vs_z(scale, benchmark):
    rows = []
    for name in scale.datasets:
        graph = build_dataset(name, scale=scale.graph_scale)
        for z in scale.z_values[name]:
            dtlp = DTLP(graph, DTLPConfig(z=z, xi=5)).build()
            stats = dtlp.statistics()
            rows.append(
                [
                    name,
                    z,
                    round(stats.build_seconds, 4),
                    stats.ep_index_bytes // 1024,
                    stats.skeleton_bytes // 1024,
                    stats.num_bounding_paths,
                ]
            )

    def kernel():
        name = scale.datasets[0]
        graph = build_dataset(name, scale=scale.graph_scale)
        return DTLP(graph, DTLPConfig(z=scale.z_values[name][1], xi=5)).build()

    benchmark.pedantic(kernel, rounds=1, iterations=1)

    print_experiment(
        "Figures 15-17: DTLP construction cost vs z (xi=5, scaled)",
        ["dataset", "z", "build time (s)", "EP-Index (KiB)", "skeleton (KiB)", "#bounding paths"],
        rows,
        notes="paper: building time first falls then rises with z; EP-Index dominates memory",
    )
    assert all(row[2] >= 0 for row in rows)
    assert all(row[3] > 0 for row in rows)


@pytest.mark.paper_figure("fig18")
def test_fig18_directed_vs_undirected_construction(scale, benchmark):
    name = "CUSA" if "CUSA" in scale.datasets else scale.datasets[-1]
    # Use a reduced scale for the directed comparison; the directed index
    # does twice the bounding-path work by design.
    graph_scale = min(scale.graph_scale, 0.5)
    z = scale.z_values[name][0]
    undirected = build_dataset(name, scale=graph_scale, directed=False)
    directed = build_dataset(name, scale=graph_scale, directed=True)

    undirected_dtlp = DTLP(undirected, DTLPConfig(z=z, xi=5)).build()

    def build_directed():
        return DTLP(directed, DTLPConfig(z=z, xi=5)).build()

    directed_dtlp = benchmark.pedantic(build_directed, rounds=1, iterations=1)

    rows = [
        ["undirected", round(undirected_dtlp.build_seconds, 4),
         undirected_dtlp.statistics().num_bounding_paths],
        ["directed", round(directed_dtlp.build_seconds, 4),
         directed_dtlp.statistics().num_bounding_paths],
    ]
    print_experiment(
        f"Figure 18: directed vs undirected DTLP construction ({name}, z={z}, scaled)",
        ["graph type", "build time (s)", "#bounding paths"],
        rows,
        notes="paper: directed construction costs roughly twice the undirected one",
    )
    assert (
        directed_dtlp.statistics().num_bounding_paths
        > undirected_dtlp.statistics().num_bounding_paths
    ), "directed index should hold more bounding paths (both directions)"

"""Figure 23: DTLP maintenance cost with varying alpha (fraction of changed edges).

The paper fixes xi=10, tau=50% and varies the percentage of edges whose
weight changes per snapshot from 10% to 50%; the maintenance time rises with
alpha because more bounding paths and unit weights must be refreshed.

Paper map: ``docs/paper_map.md`` ties every benchmark to its figure/table.
"""

from __future__ import annotations

import pytest

from repro.bench import build_dataset, print_experiment
from repro.core import DTLP, DTLPConfig
from repro.dynamics import TrafficModel


@pytest.mark.paper_figure("fig23")
def test_fig23_maintenance_cost_vs_alpha(scale, benchmark):
    alpha_grid = (0.1, 0.2, 0.3, 0.4, 0.5)
    rows = []
    per_dataset_times = {}
    for name in scale.datasets:
        times = []
        for alpha in alpha_grid:
            graph = build_dataset(name, scale=scale.graph_scale).snapshot()
            dtlp = DTLP(graph, DTLPConfig(z=scale.z_values[name][1], xi=10)).build()
            model = TrafficModel(graph, alpha=alpha, tau=0.5, seed=29)
            updates = model.advance()
            elapsed = dtlp.handle_updates(updates)
            times.append(elapsed)
            rows.append([name, f"{int(alpha * 100)}%", len(updates), round(elapsed, 4)])
        per_dataset_times[name] = times

    def kernel():
        name = scale.datasets[0]
        graph = build_dataset(name, scale=scale.graph_scale).snapshot()
        dtlp = DTLP(graph, DTLPConfig(z=scale.z_values[name][1], xi=10)).build()
        updates = TrafficModel(graph, alpha=0.3, tau=0.5, seed=29).advance()
        return dtlp.handle_updates(updates)

    benchmark.pedantic(kernel, rounds=1, iterations=1)

    print_experiment(
        "Figure 23: DTLP maintenance time vs alpha (xi=10, tau=50%, scaled)",
        ["dataset", "alpha", "#updates", "maintenance time (s)"],
        rows,
        notes="paper: maintenance time grows with the fraction of changed edges",
    )
    for name, times in per_dataset_times.items():
        assert times[-1] >= times[0], (
            f"maintenance time for {name} should grow from alpha=10% to alpha=50%"
        )

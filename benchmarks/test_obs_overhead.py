"""Observability overhead guard: the cost of having (and using) repro.obs.

The kernel profiling hooks (``repro.obs.profile``) put one thread-local
lookup at the entry of every primitive in ``repro.kernel.primitives``; span
tracing adds per-work-item span pushes through the bolts.  This benchmark
pins both prices:

* **disabled** — hooks present but no collector active — must cost < 3%
  against an in-file copy of the pre-hook lean loop (the entry ``getattr``
  is the *only* difference, so this is a direct measurement of it);
* **enabled** — full span tracing + kernel profiling through an
  end-to-end topology batch — must cost < 15% against the same batch with
  observability off.

The enabled comparison runs with ``pruning=False`` so both sides do
identical logical work (the cross-round partial-path memo is per-process
state; see ARCHITECTURE.md, "Observability") and on fresh topologies so
memo warmth cannot leak between the timed sides.

Writes ``BENCH_obs.json`` (baseline = fully observed batch, new = same
batch unobserved, so ``speedup`` reads as the ×-cost of full tracing).
"""

from __future__ import annotations

import random
import time
from heapq import heappop, heappush
from typing import List, Tuple

from repro.bench import print_experiment, write_bench_json
from repro.core import DTLP, DTLPConfig
from repro.distributed import StormTopology
from repro.graph import road_network
from repro.kernel import CSRSnapshot
from repro.kernel.primitives import dijkstra_arrays
from repro.obs.trace import TraceSession
from repro.workloads import QueryGenerator

_INF = float("inf")

#: Acceptance ceilings (fractions of the baseline) from the PR contract.
DISABLED_CEILING = 0.03
ENABLED_CEILING = 0.15


def _lean_dijkstra(rows, num_vertices: int, source: int, target: int):
    """Verbatim copy of the pre-hook early-exit loop of ``dijkstra_arrays``.

    The production function is this plus one ``kernel_counters()`` call at
    entry; timing the two against each other isolates exactly the cost the
    disabled ceiling bounds.
    """
    dist: List[float] = [_INF] * num_vertices
    pred: List[int] = [-1] * num_vertices
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heappop(heap)
        if d > dist[u]:
            continue
        if u == target:
            break
        for v, w in rows[u]:
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                pred[v] = u
                heappush(heap, (nd, v))
    return dist, pred, None


def _best_of(callable_, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def test_obs_overhead(scale) -> None:
    # ------------------------------------------------------------------
    # disabled: hook-bearing primitive vs the lean copy
    # ------------------------------------------------------------------
    side = 55 if scale.name == "quick" else 90
    graph = road_network(side, side, seed=3)
    snapshot = CSRSnapshot(graph)
    rows, n = snapshot.rows, snapshot.num_vertices
    rng = random.Random(1)
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(12)]

    for source, target in pairs[:4]:
        assert _lean_dijkstra(rows, n, source, target) == dijkstra_arrays(
            rows, n, source, target, track_touched=False
        )

    repeats = 7 if scale.name == "quick" else 9
    lean_s = _best_of(
        lambda: [_lean_dijkstra(rows, n, s, t) for s, t in pairs], repeats
    )
    hooked_s = _best_of(
        lambda: [
            dijkstra_arrays(rows, n, s, t, track_touched=False) for s, t in pairs
        ],
        repeats,
    )
    disabled_overhead = hooked_s / lean_s - 1.0

    # ------------------------------------------------------------------
    # enabled: fully observed topology batch vs the same batch unobserved
    # ------------------------------------------------------------------
    qgraph = road_network(24, 24, seed=5)
    dtlp = DTLP(qgraph, DTLPConfig(z=48, xi=3)).build()
    queries = QueryGenerator(qgraph, seed=2, min_hops=4).generate(
        16 if scale.name == "quick" else 40, k=3
    )

    def run_batch(observed: bool) -> float:
        # Fresh topology per run: the bolts' cross-round memos must not
        # warm one side against the other.
        tracer = TraceSession() if observed else None
        with StormTopology(dtlp, pruning=False, tracer=tracer) as topology:
            started = time.perf_counter()
            topology.run_queries(queries)
            elapsed = time.perf_counter() - started
        if observed:
            assert len(tracer.queries) == len(queries)
        return elapsed

    batch_repeats = 3 if scale.name == "quick" else 5
    plain_s = min(run_batch(observed=False) for _ in range(batch_repeats))
    observed_s = min(run_batch(observed=True) for _ in range(batch_repeats))
    enabled_overhead = observed_s / plain_s - 1.0

    print_experiment(
        "Observability overhead (BENCH_obs)",
        ["configuration", "time (ms)", "overhead", "ceiling"],
        [
            ["kernel lean copy", round(lean_s * 1e3, 3), "-", "-"],
            [
                "kernel hooks off",
                round(hooked_s * 1e3, 3),
                f"{disabled_overhead:+.2%}",
                f"<{DISABLED_CEILING:.0%}",
            ],
            ["topology batch, obs off", round(plain_s * 1e3, 3), "-", "-"],
            [
                "topology batch, trace+profile",
                round(observed_s * 1e3, 3),
                f"{enabled_overhead:+.2%}",
                f"<{ENABLED_CEILING:.0%}",
            ],
        ],
        notes="min-of-N timings; enabled comparison uses pruning=False and "
        "fresh topologies so both sides do identical logical work",
    )
    write_bench_json(
        "obs",
        {
            "scale": scale.name,
            "kernel_vertices": n,
            "kernel_queries": len(pairs),
            "batch_vertices": qgraph.num_vertices,
            "batch_queries": len(queries),
            "disabled_overhead_pct": round(disabled_overhead * 100, 2),
            "enabled_overhead_pct": round(enabled_overhead * 100, 2),
        },
        baseline_ms=observed_s * 1e3,
        new_ms=plain_s * 1e3,
        qps=len(queries) / plain_s,
    )

    assert disabled_overhead < DISABLED_CEILING, (
        f"disabled-path overhead {disabled_overhead:.2%} exceeds "
        f"{DISABLED_CEILING:.0%}: the kernel entry hook got expensive"
    )
    assert enabled_overhead < ENABLED_CEILING, (
        f"enabled tracing+profiling overhead {enabled_overhead:.2%} exceeds "
        f"{ENABLED_CEILING:.0%}"
    )

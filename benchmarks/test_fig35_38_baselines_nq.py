"""Figures 35-38: KSP-DG vs FindKSP vs Yen, scalability in the number of queries.

The paper compares the total processing time of the three algorithms as the
query batch grows, per dataset.  KSP-DG runs distributed on the cluster; the
two centralized baselines are replicated on every server with queries spread
across servers.  KSP-DG wins with a lower growth rate, and the gap widens on
larger graphs.

The scaled version uses the simulated cluster (4 workers) for KSP-DG and the
parallel-makespan model with the same number of servers for the baselines.

Paper map: ``docs/paper_map.md`` ties every benchmark to its figure/table.
"""

from __future__ import annotations

import pytest

from repro.bench import DATASET_DEFAULT_Z, build_dataset, make_queries, print_experiment
from repro.core import DTLP, DTLPConfig
from repro.distributed import StormTopology
from repro.workloads import BatchRunner, FindKSPEngine, YenEngine

NUM_SERVERS = 4


@pytest.mark.paper_figure("fig35-38")
def test_fig35_38_baseline_comparison_vs_nq(scale, benchmark):
    rows = []
    wins = 0
    comparisons = 0
    for name in scale.datasets:
        graph = build_dataset(name, scale=scale.graph_scale)
        dtlp = DTLP(graph, DTLPConfig(z=DATASET_DEFAULT_Z[name], xi=3)).build()
        # pruning=False for the same reason the baselines pass
        # prune=False: the figure compares the paper's algorithms, and the
        # cross-query memo would let later (larger) batches run warm.
        topology = StormTopology(dtlp, num_workers=NUM_SERVERS, pruning=False)
        for batch_size in scale.num_query_batches:
            queries = make_queries(graph, batch_size, k=2, seed=61)
            ksp_dg_report = topology.run_queries(queries)
            yen_report = BatchRunner(YenEngine(graph, prune=False), num_servers=NUM_SERVERS).run(queries)
            findksp_report = BatchRunner(
                FindKSPEngine(graph, prune=False), num_servers=NUM_SERVERS
            ).run(queries)
            rows.append(
                [
                    name,
                    batch_size,
                    round(ksp_dg_report.makespan_seconds, 4),
                    round(findksp_report.parallel_seconds, 4),
                    round(yen_report.parallel_seconds, 4),
                ]
            )
            comparisons += 1
            if ksp_dg_report.makespan_seconds <= yen_report.parallel_seconds:
                wins += 1

    name = scale.datasets[0]

    def kernel():
        graph = build_dataset(name, scale=scale.graph_scale)
        queries = make_queries(graph, scale.num_query_batches[0], k=2, seed=61)
        return BatchRunner(YenEngine(graph, prune=False), num_servers=NUM_SERVERS).run(queries)

    benchmark.pedantic(kernel, rounds=1, iterations=1)

    print_experiment(
        f"Figures 35-38: KSP-DG vs FindKSP vs Yen, time vs Nq (k=2, xi=3, {NUM_SERVERS} servers, scaled)",
        ["dataset", "Nq", "KSP-DG (s)", "FindKSP (s)", "Yen (s)"],
        rows,
        notes=(
            "paper: KSP-DG outperforms both baselines with a lower growth rate. "
            f"At this reduced scale KSP-DG won {wins}/{comparisons} configurations — "
            "on graphs this small a full-graph Yen query is already cheap, so the "
            "crossover the paper reports requires larger graphs (see EXPERIMENTS.md)."
        ),
    )
    # Sanity checks: every engine produced timings, and both KSP-DG and Yen
    # grow with the batch size (the growth-rate comparison is reported above).
    assert rows
    per_dataset = {}
    for name, batch_size, ksp_dg_time, _, yen_time in rows:
        per_dataset.setdefault(name, []).append((batch_size, ksp_dg_time, yen_time))
    for name, series in per_dataset.items():
        series.sort()
        assert series[-1][1] >= series[0][1], f"{name}: KSP-DG time should grow with Nq"
        assert series[-1][2] >= series[0][2], f"{name}: Yen time should grow with Nq"

"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section 6) at a reduced scale, printing the same rows/series the paper
plots.  The scale is controlled by the ``REPRO_BENCH_SCALE`` environment
variable: ``quick`` (default, minutes) or ``full`` (longer, larger graphs and
batches).

The benchmarks use ``pytest-benchmark`` where a single timed kernel makes
sense (index construction, maintenance, query batches) and plain measurement
loops where the paper's figure is itself a parameter sweep; either way each
test prints a table mirroring the corresponding figure.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import FULL_SCALE, QUICK_SCALE


def pytest_configure(config):
    config.addinivalue_line("markers", "paper_figure(name): experiment for a paper figure")
    # Archive every experiment table to a file in the repository root so the
    # figures remain readable even though pytest captures stdout.
    if "REPRO_BENCH_REPORT" not in os.environ:
        report_path = os.path.join(str(config.rootpath), "bench_report.txt")
        os.environ["REPRO_BENCH_REPORT"] = report_path
        with open(report_path, "wt", encoding="utf-8") as handle:
            handle.write("KSP-DG / DTLP reproduction - benchmark report\n")


@pytest.fixture(scope="session")
def scale():
    """The experiment scale profile selected via REPRO_BENCH_SCALE."""
    profile = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    return FULL_SCALE if profile == "full" else QUICK_SCALE

"""Load-adaptive placement under a skewed workload (beyond the paper).

Paper map (``docs/paper_map.md``): extends Section 6.6's load-balance
claim — the paper reports <6% CPU spread under *uniform* random queries on
a static placement; this experiment shows what a rush-hour hotspot does to
that placement and how the load-adaptive layer
(:mod:`repro.distributed.rebalance`) repairs it with a live subgraph
migration.

Two classes of claims:

* **identity** (hard assertion, any hardware): the rebalancing topology
  returns bit-identical paths and distances to the static one — before,
  during and after the migration — on the serial, thread and process
  backends alike, and the migrations themselves fire at the same point
  with the same moves on every backend.
* **balance** (hard assertion, any hardware — the load metric is the
  deterministic per-subgraph task count, not wall clock): rebalancing
  strictly reduces the max/mean worker-load ratio versus static placement
  on the skewed workload, landing at or below the configured threshold.
"""

from __future__ import annotations

import pytest

from repro.bench import print_experiment
from repro.core import DTLP, DTLPConfig
from repro.distributed import Placement, RebalanceConfig, StormTopology
from repro.dynamics import TrafficModel
from repro.exec import EXECUTORS
from repro.graph import road_network
from repro.workloads import QueryGenerator

THRESHOLD = 1.4
NUM_WORKERS = 4


def _build(scale) -> tuple:
    size = 10 if scale.name == "quick" else 16
    graph = road_network(size, size, seed=5)
    dtlp = DTLP(graph, DTLPConfig(z=10, xi=2)).build()
    return graph, dtlp


def _hotspot_queries(graph, dtlp, count: int):
    """A rush-hour hotspot: every query's endpoints on worker 0's subgraphs."""
    placement = Placement.balanced(dtlp.partition, NUM_WORKERS)
    vertices = sorted(
        {
            vertex
            for subgraph_id in placement.subgraphs_on(0)
            for vertex in dtlp.partition.subgraph(subgraph_id).vertices
        }
    )
    return QueryGenerator(graph, seed=3, min_hops=2, hotspot=vertices).generate(
        count, k=2
    )


def _signature(report):
    return [
        [(path.vertices, path.distance) for path in result.paths]
        for result in report.results
    ]


def _run_rounds(graph_seed: int, size: int, queries, executor: str, rebalance):
    """Three query rounds interleaved with traffic, on a fresh index."""
    graph = road_network(size, size, seed=graph_seed)
    dtlp = DTLP(graph, DTLPConfig(z=10, xi=2)).build()
    dtlp.attach()
    model = TrafficModel(graph, alpha=0.25, tau=0.3, seed=11)
    signatures, imbalances = [], []
    with StormTopology(
        dtlp,
        num_workers=NUM_WORKERS,
        executor=executor,
        executor_workers=2,
        rebalance=rebalance,
    ) as topology:
        for round_number in range(3):
            report = topology.run_queries(queries)
            signatures.append(_signature(report))
            imbalances.append(topology.load_report("tasks").imbalance())
            if round_number < 2:
                topology.submit_weight_updates(model.advance())
        rebalancer = topology.rebalancer
        rebalances = rebalancer.rebalances if rebalancer else 0
        migrated = rebalancer.subgraphs_migrated if rebalancer else 0
        placement = tuple(sorted(topology.placement.assignment.items()))
    return signatures, imbalances, rebalances, migrated, placement


@pytest.mark.paper_figure("rebalance-skew")
def test_rebalancing_reduces_skew_with_identical_results(scale) -> None:
    graph, dtlp = _build(scale)
    size = 10 if scale.name == "quick" else 16
    queries = _hotspot_queries(graph, dtlp, 16 if scale.name == "quick" else 40)

    rows = []
    static_by_backend = {}
    adaptive_by_backend = {}
    for executor in EXECUTORS:
        static_by_backend[executor] = _run_rounds(5, size, queries, executor, None)
        adaptive_by_backend[executor] = _run_rounds(
            5, size, queries, executor, RebalanceConfig(threshold=THRESHOLD)
        )
        static = static_by_backend[executor]
        adaptive = adaptive_by_backend[executor]
        rows.append(
            [
                executor,
                round(static[1][0], 3),   # round-1 imbalance (both start equal)
                round(static[1][-1], 3),  # static stays skewed
                round(adaptive[1][-1], 3),  # adaptive after migration
                adaptive[2],
                adaptive[3],
                "yes" if adaptive[0] == static[0] else "NO",
            ]
        )

    print_experiment(
        "Load-adaptive placement under a hotspot workload "
        f"(threshold {THRESHOLD}, {len(queries)} queries x 3 rounds)",
        [
            "executor",
            "imbalance round 1",
            "static final",
            "rebalanced final",
            "migrations",
            "subgraphs moved",
            "results identical",
        ],
        rows,
        notes="imbalance = max/mean per-worker load (deterministic task metric); "
        "the hotspot concentrates every query on one worker's subgraphs",
    )

    serial_static = static_by_backend["serial"]
    serial_adaptive = adaptive_by_backend["serial"]
    # The migration genuinely happened, and strictly reduced the skew.
    assert serial_adaptive[2] >= 1
    assert serial_adaptive[1][-1] < serial_static[1][-1]
    assert serial_adaptive[1][-1] <= THRESHOLD
    for executor in EXECUTORS:
        static = static_by_backend[executor]
        adaptive = adaptive_by_backend[executor]
        # Bit-identical paths/distances across the migration, per backend.
        assert adaptive[0] == static[0]
        # And every backend agrees with the serial reference on results,
        # imbalance trajectory, trigger point, moves and final placement.
        assert static[0] == serial_static[0]
        assert adaptive == serial_adaptive

"""Figure 19: DTLP maintenance cost, directed vs undirected, with varying z.

The paper applies a heavy update batch (alpha=50%, tau=50%) to CUSA and
measures the time to refresh the DTLP index, for several z values and for
both the undirected and directed variants; the directed index costs roughly
twice as much to maintain.

Paper map: ``docs/paper_map.md`` ties every benchmark to its figure/table.
"""

from __future__ import annotations

import pytest

from repro.bench import build_dataset, print_experiment
from repro.core import DTLP, DTLPConfig
from repro.dynamics import TrafficModel


@pytest.mark.paper_figure("fig19")
def test_fig19_maintenance_directed_vs_undirected(scale, benchmark):
    name = "CUSA" if "CUSA" in scale.datasets else scale.datasets[-1]
    graph_scale = min(scale.graph_scale, 0.5)
    rows = []
    timings = {}
    for directed in (False, True):
        graph = build_dataset(name, scale=graph_scale, directed=directed).snapshot()
        for z in scale.z_values[name][:2]:
            dtlp = DTLP(graph, DTLPConfig(z=z, xi=5)).build()
            model = TrafficModel(graph, alpha=0.5, tau=0.5, seed=17)
            updates = model.advance()
            elapsed = dtlp.handle_updates(updates)
            label = "directed" if directed else "undirected"
            rows.append([label, z, len(updates), round(elapsed, 4)])
            timings[(label, z)] = elapsed

    def kernel():
        graph = build_dataset(name, scale=graph_scale, directed=False).snapshot()
        dtlp = DTLP(graph, DTLPConfig(z=scale.z_values[name][0], xi=5)).build()
        updates = TrafficModel(graph, alpha=0.5, tau=0.5, seed=17).advance()
        return dtlp.handle_updates(updates)

    benchmark.pedantic(kernel, rounds=1, iterations=1)

    print_experiment(
        f"Figure 19: DTLP maintenance cost ({name}, alpha=50%, tau=50%, scaled)",
        ["graph type", "z", "#updates", "maintenance time (s)"],
        rows,
        notes="paper: directed maintenance costs roughly 2x the undirected one",
    )
    for z in scale.z_values[name][:2]:
        assert timings[("directed", z)] >= timings[("undirected", z)] * 0.8, (
            "directed maintenance should not be cheaper than undirected"
        )

"""Figures 40-41: comparison with CANDS for single-shortest-path queries (k=1).

CANDS indexes the exact shortest path between every pair of boundary
vertices per subgraph.  The paper shows (Figure 40) that CANDS answers k=1
queries somewhat faster than KSP-DG, but (Figure 41) its index maintenance
under heavy weight churn is far more expensive than DTLP's, because the
indexed shortest paths must be recomputed while DTLP's bounding paths never
change.

Paper map: ``docs/paper_map.md`` ties every benchmark to its figure/table.
"""

from __future__ import annotations

import time

import pytest

from repro.algorithms import CandsIndex
from repro.bench import DATASET_DEFAULT_Z, build_dataset, make_queries, print_experiment
from repro.core import DTLP, DTLPConfig, KSPDG
from repro.dynamics import TrafficModel


@pytest.mark.paper_figure("fig40-41")
def test_fig40_41_cands_comparison(scale, benchmark):
    processing_rows = []
    maintenance_rows = []
    maintenance_ok = True
    for name in scale.datasets:
        graph = build_dataset(name, scale=scale.graph_scale).snapshot()
        z = DATASET_DEFAULT_Z[name]
        dtlp = DTLP(graph, DTLPConfig(z=z, xi=3)).build()
        cands = CandsIndex(dtlp.partition).build()
        engine = KSPDG(dtlp)
        queries = make_queries(graph, scale.num_queries, k=1, seed=71)

        started = time.perf_counter()
        for query in queries:
            engine.query(query.source, query.target, 1)
        ksp_dg_seconds = time.perf_counter() - started

        started = time.perf_counter()
        for query in queries:
            cands.shortest_path(query.source, query.target)
        cands_seconds = time.perf_counter() - started

        processing_rows.append(
            [name, round(ksp_dg_seconds, 4), round(cands_seconds, 4)]
        )

        # Figure 41: maintenance cost under alpha=50%, tau=50%.  Besides the
        # wall-clock times we report a scale-independent work proxy: the
        # number of single-source Dijkstra runs CANDS must redo versus the
        # number of bounding-path distance refreshes DTLP performs.
        model = TrafficModel(graph, alpha=0.5, tau=0.5, seed=73)
        updates = model.advance()
        dtlp_maintenance = dtlp.handle_updates(updates)
        cands_maintenance = cands.handle_updates(updates)
        touched_subgraphs = {
            dtlp.partition.owner_of_edge(update.u, update.v) for update in updates
        }
        cands_dijkstras = sum(
            len(dtlp.partition.subgraph(sid).boundary_vertices)
            for sid in touched_subgraphs
        )
        dtlp_path_refreshes = 0
        for sid in touched_subgraphs:
            index = dtlp.subgraph_index(sid)
            touched_paths = set()
            for update in updates:
                touched_paths.update(index.ep_index.paths_through_edge(update.u, update.v))
            dtlp_path_refreshes += len(touched_paths)
        maintenance_rows.append(
            [
                name,
                round(dtlp_maintenance, 4),
                round(cands_maintenance, 4),
                dtlp_path_refreshes,
                cands_dijkstras,
            ]
        )
        maintenance_ok = maintenance_ok and cands_maintenance >= dtlp_maintenance * 0.5

    name = scale.datasets[0]

    def kernel():
        graph = build_dataset(name, scale=scale.graph_scale).snapshot()
        dtlp = DTLP(graph, DTLPConfig(z=DATASET_DEFAULT_Z[name], xi=3)).build()
        return CandsIndex(dtlp.partition).build()

    benchmark.pedantic(kernel, rounds=1, iterations=1)

    print_experiment(
        f"Figure 40: KSP-DG vs CANDS, k=1 processing time (Nq={scale.num_queries}, scaled)",
        ["dataset", "KSP-DG (s)", "CANDS (s)"],
        processing_rows,
        notes="paper: CANDS is faster for single-shortest-path queries",
    )
    print_experiment(
        "Figure 41: KSP-DG (DTLP) vs CANDS index maintenance time (alpha=50%, tau=50%, scaled)",
        ["dataset", "DTLP (s)", "CANDS (s)", "DTLP path refreshes", "CANDS Dijkstra runs"],
        maintenance_rows,
        notes=(
            "paper: CANDS maintenance is far more expensive than DTLP's.  At this scale the "
            "wall-clock gap is small because subgraphs hold only tens of vertices (one CANDS "
            "Dijkstra is cheap); the work-proxy columns show the structural difference — each "
            "CANDS Dijkstra costs O(z log z) and grows with the subgraph size, while each DTLP "
            "refresh is a constant-time path-distance adjustment."
        ),
    )
    assert maintenance_ok, (
        "CANDS maintenance should not be drastically cheaper than DTLP's"
    )

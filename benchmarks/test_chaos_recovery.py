"""Recovery SLOs under injected faults (beyond the paper).

Paper map (``docs/paper_map.md``): extends Section 6's steady-state
evaluation with the failure/elasticity axis the paper's Storm deployment
would face in production: what happens to throughput when a worker dies
mid-batch, stalls, or a fresh worker joins and state migrates onto it —
and how fast the pool returns to its pre-fault service level.

Two classes of claims:

* **correctness** (hard assertion, any hardware): every chaos run returns
  bit-identical paths and distances to a fault-free oracle replay of the
  same workload — zero wrong answers, zero dropped queries — and the
  fault/recovery event log is deterministic for the pinned plan.
* **recovery SLO** (reported, wall-clock): per fault kind, the qps dip
  relative to the pre-fault baseline and the time below the recovery
  threshold, written to ``BENCH_chaos.json`` as ``kind: "recovery"`` rows.
"""

from __future__ import annotations

import pytest

from repro.bench import print_experiment
from repro.bench.benchjson import write_bench_rows
from repro.chaos import ChaosHarness, FaultEvent, FaultPlan, generate_chaos_workload
from repro.core import DTLP, DTLPConfig
from repro.graph import road_network

NUM_WORKERS = 4
FAULT_BATCH = 3

#: One pinned single-event plan per fault kind, so each recovery row
#: isolates that kind's dip (the kill lands mid-batch: worker dies with
#: half the batch still in flight).
FAULTS = {
    "kill": FaultEvent(batch_index=FAULT_BATCH, kind="kill", offset=4),
    "stall": FaultEvent(batch_index=FAULT_BATCH, kind="stall", duration_batches=2),
    "join": FaultEvent(batch_index=FAULT_BATCH, kind="join"),
}


@pytest.mark.paper_figure("chaos-recovery")
def test_recovery_slo_per_fault_kind(scale) -> None:
    size = 9 if scale.name == "quick" else 14
    num_batches = 9 if scale.name == "quick" else 14
    batch_size = 8 if scale.name == "quick" else 16

    def builder() -> DTLP:
        graph = road_network(size, size, seed=5)
        return DTLP(graph, DTLPConfig(z=12, xi=2)).build()

    workload = generate_chaos_workload(
        builder().graph,
        num_batches=num_batches,
        batch_size=batch_size,
        seed=3,
        update_every=2,
    )
    harness = ChaosHarness(builder, num_workers=NUM_WORKERS, executor="serial")

    table_rows = []
    bench_rows = []
    for kind, event in FAULTS.items():
        plan = FaultPlan(seed=17, events=(event,))
        report = harness.execute(workload, plan)

        assert report.ok, (
            f"{kind}: {report.wrong_answers} wrong answers, "
            f"{report.dropped_queries} dropped queries vs the oracle"
        )
        # The pinned plan replays identically: same event log both times.
        repeat = harness.run(workload, plan)
        assert [e.as_tuple() for e in repeat.events] == [
            e.as_tuple() for e in report.chaos.events
        ]
        if kind == "kill":
            assert report.workers_lost == 1
            assert report.subgraphs_recovered >= 1
        if kind == "join":
            assert report.workers_joined == 1
            assert report.subgraphs_recovered >= 1, "join must migrate state"

        sample = report.recoveries[0]
        table_rows.append(
            [
                kind,
                "yes" if sample.recovered else "NO",
                sample.recovery_batches,
                round(sample.recovery_seconds * 1e3, 2),
                round(sample.qps_dip / sample.qps_baseline, 3),
                report.retried_queries,
                report.join_transfer_units,
            ]
        )
        bench_rows.append(
            {
                "config": {
                    "graph": f"road_network({size}x{size})",
                    "workers": NUM_WORKERS,
                    "executor": "serial",
                    "batches": num_batches,
                    "batch_size": batch_size,
                    "fault_batch": FAULT_BATCH,
                },
                "fault": kind,
                "recovery_ms": sample.recovery_seconds * 1e3,
                "qps_baseline": sample.qps_baseline,
                "qps_dip": sample.qps_dip,
                "qps_recovered": sample.qps_recovered,
            }
        )

    print_experiment(
        "Recovery SLOs per fault kind "
        f"({num_batches} batches x {batch_size} queries, fault at batch "
        f"{FAULT_BATCH}, {NUM_WORKERS} workers)",
        [
            "fault",
            "recovered",
            "batches to recover",
            "recovery (ms)",
            "qps dip (x baseline)",
            "retried queries",
            "join transfer (units)",
        ],
        table_rows,
        notes="every run bit-identical to a fault-free oracle (zero wrong "
        "answers asserted); recovery = first batch back above 70% of the "
        "median pre-fault qps",
    )
    write_bench_rows("chaos", bench_rows)

"""Ablation benchmarks for DTLP's design choices.

These experiments are not figures in the paper; they isolate the design
decisions the paper argues for qualitatively:

* **vfrag bounds vs hop-count bounds** (Section 3.4's two refinements).
  The first-attempt index bounds a path by the sum of the m smallest *edge*
  weights (m = number of edges); DTLP bounds it by the sum of the phi
  smallest *unit* weights (phi = number of vfrags).  The ablation measures
  how much tighter the vfrag bound is on a real subgraph after a traffic
  snapshot — the tighter the bound, the fewer KSP-DG iterations.
* **MFP-tree compression** (Section 4).  Measures the EP-Index entry count
  against the number of nodes in the LSH/MFP-tree forest, i.e. the fraction
  of duplicate bounding-path references the compression removes.
* **Partial-path caching across iterations** (Section 5.2's optimisation).
  Compares the number of per-pair Yen computations KSP-DG performs with the
  number it would perform if every iteration recomputed all pairs.

Paper map: ``docs/paper_map.md`` ties every benchmark to its figure/table.
"""

from __future__ import annotations

import pytest

from repro.bench import DATASET_DEFAULT_Z, build_dataset, make_queries, print_experiment
from repro.core import DTLP, DTLPConfig, KSPDG, build_mfp_forest, lsh_group_edges
from repro.dynamics import TrafficModel


@pytest.mark.paper_figure("ablation-bounds")
def test_ablation_vfrag_vs_edge_count_bounds(scale, benchmark):
    name = scale.datasets[0]
    graph = build_dataset(name, scale=scale.graph_scale).snapshot()
    dtlp = DTLP(graph, DTLPConfig(z=DATASET_DEFAULT_Z[name], xi=3)).build()
    graph.add_listener(dtlp.handle_updates)
    TrafficModel(graph, alpha=0.5, tau=0.5, seed=97).advance()

    rows = []
    vfrag_total, hop_total, exact_total = 0.0, 0.0, 0.0
    pairs_checked = 0
    for index in dtlp.subgraph_indexes().values():
        subgraph = index.subgraph
        # Hop-count bound: m smallest edge weights for an m-edge path.
        edge_weights = sorted(weight for _, _, weight in subgraph.edges())
        for pair in list(index.boundary_pairs())[:10]:
            paths = index.bounding_paths(*pair)
            if not paths:
                continue
            first = paths[0]
            hops = len(first.vertices) - 1
            hop_bound = sum(edge_weights[:hops])
            vfrag_bound = index.lower_bound_distance(*pair)
            exact = min(path.distance for path in paths)
            vfrag_total += vfrag_bound
            hop_total += hop_bound
            exact_total += exact
            pairs_checked += 1
        if pairs_checked >= 200:
            break

    benchmark.pedantic(lambda: dtlp.statistics(), rounds=1, iterations=1)

    rows.append(
        [
            pairs_checked,
            round(hop_total / max(exact_total, 1e-9), 3),
            round(vfrag_total / max(exact_total, 1e-9), 3),
        ]
    )
    print_experiment(
        "Ablation: edge-count bound vs vfrag bound tightness (ratio to witness distance)",
        ["#pairs", "hop-count bound ratio", "vfrag bound ratio"],
        rows,
        notes="closer to 1.0 is tighter; the paper's vfrag refinement should dominate",
    )
    assert vfrag_total >= hop_total * 0.99, (
        "the vfrag bound should be at least as tight as the edge-count bound"
    )


@pytest.mark.paper_figure("ablation-mfp")
def test_ablation_mfp_tree_compression(scale, benchmark):
    name = scale.datasets[0]
    graph = build_dataset(name, scale=scale.graph_scale)
    dtlp = DTLP(graph, DTLPConfig(z=DATASET_DEFAULT_Z[name], xi=5)).build()

    rows = []
    total_entries = 0
    total_nodes = 0
    for subgraph_id, index in dtlp.subgraph_indexes().items():
        path_sets = index.ep_index.path_sets()
        if not path_sets:
            continue
        groups = lsh_group_edges(path_sets, num_hashes=16, num_bands=4)
        forest = build_mfp_forest(path_sets, groups)
        entries = index.ep_index.num_entries()
        nodes = forest.num_nodes()
        total_entries += entries
        total_nodes += nodes

    def kernel():
        index = next(iter(dtlp.subgraph_indexes().values()))
        path_sets = index.ep_index.path_sets()
        groups = lsh_group_edges(path_sets, num_hashes=16, num_bands=4)
        return build_mfp_forest(path_sets, groups)

    benchmark.pedantic(kernel, rounds=1, iterations=1)

    rows.append(
        [
            total_entries,
            total_nodes,
            round(total_nodes / max(total_entries, 1), 3),
        ]
    )
    print_experiment(
        "Ablation: EP-Index entries vs MFP-forest nodes (Section 4 compression)",
        ["EP-Index entries", "MFP-forest nodes", "node/entry ratio"],
        rows,
        notes="a ratio below 1.0 means duplicate bounding-path references were compressed away",
    )
    assert total_nodes < total_entries


@pytest.mark.paper_figure("ablation-cache")
def test_ablation_partial_path_cache(scale, benchmark):
    name = scale.datasets[0]
    graph = build_dataset(name, scale=scale.graph_scale).snapshot()
    dtlp = DTLP(graph, DTLPConfig(z=DATASET_DEFAULT_Z[name], xi=1)).build()
    graph.add_listener(dtlp.handle_updates)
    TrafficModel(graph, alpha=0.3, tau=0.5, seed=101).advance()
    engine = KSPDG(dtlp)
    queries = make_queries(graph, max(4, scale.num_queries // 2), k=4, seed=103)

    with_cache = 0
    without_cache = 0
    for query in queries:
        result = engine.query(query.source, query.target, query.k)
        with_cache += result.partial_computations
        # Without the cache every iteration recomputes every pair of its
        # reference path (one Yen call per subgraph containing the pair).
        for reference in result.reference_paths:
            vertices = reference.vertices
            for index in range(len(vertices) - 1):
                without_cache += max(
                    1,
                    len(
                        dtlp.partition.subgraphs_containing_pair(
                            vertices[index], vertices[index + 1]
                        )
                    ),
                )

    benchmark.pedantic(
        lambda: engine.query(queries[0].source, queries[0].target, queries[0].k),
        rounds=1, iterations=1,
    )
    print_experiment(
        "Ablation: partial-KSP computations with and without cross-iteration caching",
        ["with cache", "without cache (recompute every pair)", "saving"],
        [[with_cache, without_cache,
          f"{(1 - with_cache / max(without_cache, 1)) * 100:.0f}%"]],
        notes="Section 5.2: neighbouring reference paths share pairs, so caching saves most refine work",
    )
    assert with_cache <= without_cache

"""Figure 39: KSP-DG vs FindKSP vs Yen as k grows.

The paper fixes a query batch on FLA and varies k from 2 to 20; KSP-DG and
FindKSP grow much more slowly than Yen, and KSP-DG stays the fastest.  The
scaled version uses the profile's k grid on the largest configured dataset.

Paper map: ``docs/paper_map.md`` ties every benchmark to its figure/table.
"""

from __future__ import annotations

import pytest

from repro.bench import DATASET_DEFAULT_Z, build_dataset, make_queries, print_experiment
from repro.core import DTLP, DTLPConfig
from repro.distributed import StormTopology
from repro.workloads import BatchRunner, FindKSPEngine, YenEngine

NUM_SERVERS = 4


@pytest.mark.paper_figure("fig39")
def test_fig39_baseline_comparison_vs_k(scale, benchmark):
    name = "FLA" if "FLA" in scale.datasets else scale.datasets[-1]
    graph = build_dataset(name, scale=scale.graph_scale)
    dtlp = DTLP(graph, DTLPConfig(z=DATASET_DEFAULT_Z[name], xi=3)).build()
    # pruning=False: the k-sweep reuses one dtlp, and the baselines run
    # unpruned (prune=False) — KSP-DG must be measured on equal terms.
    topology = StormTopology(dtlp, num_workers=NUM_SERVERS, pruning=False)

    rows = []
    ksp_dg_times = []
    yen_times = []
    for k in scale.k_values:
        queries = make_queries(graph, scale.num_queries, k=k, seed=67)
        ksp_dg_report = topology.run_queries(queries)
        yen_report = BatchRunner(YenEngine(graph, prune=False), num_servers=NUM_SERVERS).run(queries)
        findksp_report = BatchRunner(FindKSPEngine(graph, prune=False), num_servers=NUM_SERVERS).run(queries)
        ksp_dg_times.append(ksp_dg_report.makespan_seconds)
        yen_times.append(yen_report.parallel_seconds)
        rows.append(
            [
                name,
                k,
                round(ksp_dg_report.makespan_seconds, 4),
                round(findksp_report.parallel_seconds, 4),
                round(yen_report.parallel_seconds, 4),
            ]
        )

    benchmark.pedantic(
        lambda: topology.run_queries(make_queries(graph, 2, k=scale.k_values[0], seed=67)),
        rounds=1, iterations=1,
    )

    ksp_growth = ksp_dg_times[-1] / max(ksp_dg_times[0], 1e-9)
    yen_growth = yen_times[-1] / max(yen_times[0], 1e-9)
    print_experiment(
        f"Figure 39: comparison w.r.t. k ({name}, Nq={scale.num_queries}, xi=3, scaled)",
        ["dataset", "k", "KSP-DG (s)", "FindKSP (s)", "Yen (s)"],
        rows,
        notes=(
            "paper: Yen grows fastest with k; KSP-DG stays lowest. "
            f"Measured growth from k={scale.k_values[0]} to k={scale.k_values[-1]}: "
            f"KSP-DG x{ksp_growth:.1f}, Yen x{yen_growth:.1f}. At this reduced scale the "
            "full-graph baselines stay cheap, so the paper's ordering is not reached "
            "(see EXPERIMENTS.md)."
        ),
    )
    # Sanity checks: both systems produce growing, positive timings with k.
    assert all(value > 0 for value in ksp_dg_times + yen_times)
    assert ksp_dg_times[-1] >= ksp_dg_times[0]
    assert yen_times[-1] >= yen_times[0] * 0.8

"""Execution-backend scaling: q/s and DTLP build time vs worker count.

Measures the physical side of the Placement/Executor split
(``ARCHITECTURE.md``): the same KSP-DG query batch and the same DTLP
construction executed on the ``serial`` reference backend and on the
``process`` backend with 1/2/4 resident worker replicas.

Two classes of claims:

* **identity** (hard assertion, any hardware): every backend returns
  bit-identical paths and distances;
* **scaling** (asserted only when the machine actually exposes multiple
  cores): with >= 4 usable cores, the 4-worker process backend must beat
  the serial backend on batch throughput.  On single-core containers the
  numbers are still measured and reported — expect process ≈ serial minus
  IPC overhead there, which is the honest result.

Paper map: ``docs/paper_map.md`` ties every benchmark to its figure/table.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.bench import print_experiment
from repro.bench.harness import build_dataset, build_dtlp, make_queries, run_topology_batch
from repro.core import DTLPConfig
from repro.distributed import distributed_build_report

WORKER_COUNTS = (1, 2, 4)


def _available_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _signature(report):
    return [
        [(path.vertices, path.distance) for path in result.paths]
        for result in report.results
    ]


@pytest.mark.paper_figure("exec-scaling")
def test_query_throughput_scaling(scale, benchmark) -> None:
    graph = build_dataset("NY", scale=scale.graph_scale)
    dtlp = build_dtlp("NY", z=48, xi=3, scale=scale.graph_scale)
    num_queries = 24 if scale.name == "quick" else 60
    queries = make_queries(graph, num_queries, k=3, seed=71)
    cores = _available_cores()

    rows = []
    reference_signature = None
    serial_qps = 0.0
    process_qps = {}
    for executor in ("serial", "process"):
        for workers in WORKER_COUNTS:
            if executor == "serial" and workers != WORKER_COUNTS[-1]:
                # Physical serial execution is worker-count independent;
                # measure it once on the widest logical placement.
                continue
            report, best_wall = run_topology_batch(
                dtlp, queries, num_workers=workers, executor=executor, repeats=3
            )
            signature = _signature(report)
            if reference_signature is None:
                reference_signature = signature
            else:
                # Identity contract: every backend/worker-count returns
                # bit-identical paths and distances.
                assert signature == reference_signature
            qps = len(queries) / best_wall
            if executor == "serial":
                serial_qps = qps
            else:
                process_qps[workers] = qps
            rows.append(
                [
                    executor,
                    workers,
                    round(best_wall * 1e3, 1),
                    round(qps, 1),
                ]
            )

    benchmark.pedantic(
        lambda: run_topology_batch(
            dtlp, queries[:4], num_workers=2, executor="serial"
        ),
        rounds=1,
        iterations=1,
    )

    print_experiment(
        f"Executor scaling: KSP-DG batch of {len(queries)} queries, k=3 "
        f"({graph.num_vertices} vertices; {cores} usable core(s))",
        ["executor", "workers", "batch wall (ms)", "queries/s"],
        rows,
        notes="identical paths/distances asserted across all configurations; "
        "process workers hold resident topology replicas and receive only "
        "query envelopes"
        + (
            ""
            if cores >= 4
            else "; single-core host: process backend cannot exceed serial here"
        ),
    )

    if cores >= 4:
        assert process_qps[4] > serial_qps, (
            f"4-worker process backend ({process_qps[4]:.1f} q/s) failed to beat "
            f"serial ({serial_qps:.1f} q/s) on a {cores}-core host"
        )


@pytest.mark.paper_figure("exec-scaling")
def test_dtlp_build_scaling(scale) -> None:
    graph = build_dataset("COL", scale=scale.graph_scale)
    config = DTLPConfig(z=48, xi=3)
    cores = _available_cores()

    started = time.perf_counter()
    serial = distributed_build_report(graph, config, num_workers=1)
    serial_wall = time.perf_counter() - started

    rows = [
        [
            "serial",
            1,
            round(serial_wall, 3),
            round(serial.total_build_seconds, 3),
            round(serial.parallel_build_seconds, 3),
        ]
    ]
    parallel_walls = {}
    for workers in WORKER_COUNTS:
        report = distributed_build_report(
            graph, config, num_workers=workers, executor="process"
        )
        parallel_walls[workers] = report.parallel_build_seconds
        rows.append(
            [
                "process",
                workers,
                round(report.parallel_build_seconds, 3),
                round(report.total_build_seconds, 3),
                round(report.parallel_build_seconds, 3),
            ]
        )
        # The adopted index must be equivalent to the serially built one.
        assert {
            (u, v): w for u, v, w in report.dtlp.skeleton_graph.edges()
        } == {(u, v): w for u, v, w in serial.dtlp.skeleton_graph.edges()}

    print_experiment(
        f"Executor scaling: parallel DTLP construction on COL "
        f"({graph.num_vertices} vertices; {cores} usable core(s))",
        ["executor", "workers", "wall (s)", "sum of per-subgraph (s)", "parallel (s)"],
        rows,
        notes="serial row models the makespan from measured per-subgraph times "
        "(Figure 42); process rows measure real wall-clock of the fan-out, and "
        "the resulting skeleton graph is asserted identical to the serial build",
    )

    if cores >= 4:
        assert parallel_walls[4] < serial_wall, (
            f"4-worker parallel build ({parallel_walls[4]:.3f}s) failed to beat "
            f"the serial build ({serial_wall:.3f}s) on a {cores}-core host"
        )

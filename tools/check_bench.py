#!/usr/bin/env python
"""Benchmark-report gate: validate every ``BENCH_*.json`` in the repo root.

The benchmark suites write small JSON summaries (``BENCH_kernel.json``,
``BENCH_pruning.json``, ``BENCH_service.json``, ``BENCH_obs.json``, ...)
that the README and PR descriptions quote.  Numbers that are quoted get
stale or mistyped, so CI re-validates the files' *internal consistency* on
every push:

* the top level is one benchmark row or a list of rows (multi-row files
  compare several configurations of one workload, e.g. the kernel file's
  snapshot-vs-fast rows);
* required keys are present on every row (``bench``, ``config``,
  ``baseline_ms``, ``new_ms``, ``speedup``, ``qps``) — except rows marked
  ``"kind": "counts"`` (e.g. the partition benchmark's boundary-vertex
  comparison), which instead require a non-empty ``counts`` mapping of
  non-negative integers, and rows marked ``"kind": "recovery"`` (the
  chaos benchmark's per-fault SLO), which require a ``fault`` name, a
  non-negative ``recovery_ms`` and a positive qps triple
  (``qps_baseline``/``qps_dip``/``qps_recovered``), and rows marked
  ``"kind": "loadtest"`` (the front-door loadtest's serving operating
  point), which require positive finite ``qps``/``p99_ms``/``slo_ms`` and
  an ``availability`` in ``[0, 1]``; all three kinds are exempt from every
  latency/speedup rule;
* types are right (``bench`` a string, ``config`` a mapping whose values
  are JSON scalars — extra per-bench keys such as ``kernel_tier`` or
  ``batch_size`` are fine — the rest numbers; ``qps`` may be ``null`` for
  benchmarks where throughput is not meaningful);
* latencies are positive and finite;
* ``speedup`` equals ``baseline_ms / new_ms`` within a relative tolerance
  that absorbs the files' 3-decimal rounding.

Exits non-zero on any violation, printing one line per problem.  A repo
with no ``BENCH_*.json`` files passes vacuously (fresh clones before any
benchmark run).
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent

REQUIRED_KEYS = ("bench", "config", "baseline_ms", "new_ms", "speedup", "qps")

#: Required keys of a ``kind: "counts"`` row — integer facts (e.g. boundary
#: vertex counts) with no latency/speedup fields to cross-check.
COUNTS_REQUIRED_KEYS = ("bench", "config", "counts")

#: Required keys of a ``kind: "recovery"`` row — the chaos benchmark's
#: per-fault recovery SLO (time-to-recover plus the throughput dip).
RECOVERY_REQUIRED_KEYS = (
    "bench",
    "config",
    "fault",
    "recovery_ms",
    "qps_baseline",
    "qps_dip",
    "qps_recovered",
)

#: Required keys of a ``kind: "loadtest"`` row — the front-door loadtest's
#: serving operating point (throughput at a met p99 SLO, availability).
LOADTEST_REQUIRED_KEYS = (
    "bench",
    "config",
    "qps",
    "p99_ms",
    "slo_ms",
    "availability",
)

#: Relative tolerance for ``speedup == baseline_ms / new_ms``.  The files
#: round all three fields to 3 decimals independently, so the recomputed
#: ratio can drift by roughly ``0.5e-3 / new_ms`` relative — 2% covers
#: every plausible magnitude these quick benches produce.
SPEEDUP_RTOL = 0.02


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_file(path: Path) -> List[str]:
    """Validate one ``BENCH_*.json``; returns a list of problem strings."""
    name = path.name
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [f"{name}: unreadable or invalid JSON ({exc})"]
    if isinstance(payload, dict):
        return check_row(name, payload)
    if isinstance(payload, list):
        if not payload:
            return [f"{name}: row list must not be empty"]
        problems: List[str] = []
        for position, row in enumerate(payload):
            label = f"{name}[{position}]"
            if not isinstance(row, dict):
                problems.append(
                    f"{label}: each row must be a JSON object, got {type(row).__name__}"
                )
                continue
            problems.extend(check_row(label, row))
        return problems
    return [
        f"{name}: top level must be a JSON object or a list of them, "
        f"got {type(payload).__name__}"
    ]


def _check_config(name: str, payload: dict, problems: List[str]) -> None:
    config = payload["config"]
    if not isinstance(config, dict):
        problems.append(f"{name}: 'config' must be an object")
        return
    # Arbitrary per-bench keys are allowed (kernel_tier, batch_size,
    # ...), but values must stay scalar so the rows remain greppable
    # one-line facts rather than nested reports.
    for key, value in config.items():
        if value is not None and not isinstance(value, (str, int, float, bool)):
            problems.append(
                f"{name}: config[{key!r}] must be a JSON scalar, got {value!r}"
            )


def check_counts_row(name: str, payload: dict) -> List[str]:
    """Validate one ``kind: "counts"`` row (integer facts, no latencies)."""
    problems: List[str] = []
    for key in COUNTS_REQUIRED_KEYS:
        if key not in payload:
            problems.append(f"{name}: missing required key {key!r}")
    if problems:
        return problems
    if not isinstance(payload["bench"], str) or not payload["bench"]:
        problems.append(f"{name}: 'bench' must be a non-empty string")
    _check_config(name, payload, problems)
    counts = payload["counts"]
    if not isinstance(counts, dict) or not counts:
        problems.append(f"{name}: 'counts' must be a non-empty object")
        return problems
    for key, value in counts.items():
        if isinstance(value, bool) or not isinstance(value, int):
            problems.append(
                f"{name}: counts[{key!r}] must be an integer, got {value!r}"
            )
        elif value < 0:
            problems.append(
                f"{name}: counts[{key!r}] must be non-negative, got {value!r}"
            )
    return problems


def check_recovery_row(name: str, payload: dict) -> List[str]:
    """Validate one ``kind: "recovery"`` row (per-fault recovery SLO)."""
    problems: List[str] = []
    for key in RECOVERY_REQUIRED_KEYS:
        if key not in payload:
            problems.append(f"{name}: missing required key {key!r}")
    if problems:
        return problems
    if not isinstance(payload["bench"], str) or not payload["bench"]:
        problems.append(f"{name}: 'bench' must be a non-empty string")
    _check_config(name, payload, problems)
    if not isinstance(payload["fault"], str) or not payload["fault"]:
        problems.append(f"{name}: 'fault' must be a non-empty string")
    recovery_ms = payload["recovery_ms"]
    if not _is_number(recovery_ms):
        problems.append(
            f"{name}: 'recovery_ms' must be a number, got {recovery_ms!r}"
        )
    elif not math.isfinite(recovery_ms) or recovery_ms < 0:
        problems.append(
            f"{name}: 'recovery_ms' must be non-negative and finite, "
            f"got {recovery_ms!r}"
        )
    for key in ("qps_baseline", "qps_dip", "qps_recovered"):
        value = payload[key]
        if not _is_number(value):
            problems.append(f"{name}: {key!r} must be a number, got {value!r}")
        elif not math.isfinite(value) or value <= 0:
            problems.append(
                f"{name}: {key!r} must be positive and finite, got {value!r}"
            )
    return problems


def check_loadtest_row(name: str, payload: dict) -> List[str]:
    """Validate one ``kind: "loadtest"`` row (serving operating point)."""
    problems: List[str] = []
    for key in LOADTEST_REQUIRED_KEYS:
        if key not in payload:
            problems.append(f"{name}: missing required key {key!r}")
    if problems:
        return problems
    if not isinstance(payload["bench"], str) or not payload["bench"]:
        problems.append(f"{name}: 'bench' must be a non-empty string")
    _check_config(name, payload, problems)
    for key in ("qps", "p99_ms", "slo_ms"):
        value = payload[key]
        if not _is_number(value):
            problems.append(f"{name}: {key!r} must be a number, got {value!r}")
        elif not math.isfinite(value) or value <= 0:
            problems.append(
                f"{name}: {key!r} must be positive and finite, got {value!r}"
            )
    availability = payload["availability"]
    if not _is_number(availability):
        problems.append(
            f"{name}: 'availability' must be a number, got {availability!r}"
        )
    elif not math.isfinite(availability) or not 0.0 <= availability <= 1.0:
        problems.append(
            f"{name}: 'availability' must be within [0, 1], got {availability!r}"
        )
    return problems


def check_row(name: str, payload: dict) -> List[str]:
    """Validate one benchmark row; returns a list of problem strings."""
    if payload.get("kind") == "counts":
        return check_counts_row(name, payload)
    if payload.get("kind") == "recovery":
        return check_recovery_row(name, payload)
    if payload.get("kind") == "loadtest":
        return check_loadtest_row(name, payload)
    problems: List[str] = []
    for key in REQUIRED_KEYS:
        if key not in payload:
            problems.append(f"{name}: missing required key {key!r}")
    if problems:
        return problems

    if not isinstance(payload["bench"], str) or not payload["bench"]:
        problems.append(f"{name}: 'bench' must be a non-empty string")
    _check_config(name, payload, problems)

    for key in ("baseline_ms", "new_ms", "speedup"):
        value = payload[key]
        if not _is_number(value):
            problems.append(f"{name}: {key!r} must be a number, got {value!r}")
        elif not math.isfinite(value) or value <= 0:
            problems.append(f"{name}: {key!r} must be positive and finite, got {value!r}")

    qps = payload["qps"]
    if qps is not None:
        if not _is_number(qps):
            problems.append(f"{name}: 'qps' must be a number or null, got {qps!r}")
        elif not math.isfinite(qps) or qps <= 0:
            problems.append(f"{name}: 'qps' must be positive and finite, got {qps!r}")

    if problems:
        return problems

    expected = payload["baseline_ms"] / payload["new_ms"]
    if not math.isclose(payload["speedup"], expected, rel_tol=SPEEDUP_RTOL):
        problems.append(
            f"{name}: speedup {payload['speedup']} inconsistent with "
            f"baseline_ms/new_ms = {expected:.3f}"
        )
    return problems


def main(argv: List[str]) -> int:
    paths = [Path(arg) for arg in argv] or sorted(REPO_ROOT.glob("BENCH_*.json"))
    problems: List[str] = []
    for path in paths:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    if not problems:
        print(f"check_bench: {len(paths)} file(s) OK")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

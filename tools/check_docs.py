#!/usr/bin/env python
"""Docs gate: intra-repo markdown link check + runnable README quickstart.

Two checks, both exercised by the CI ``docs`` job and runnable locally:

* ``--links``: scan every tracked ``*.md`` file for markdown links and
  verify that each *relative* target (``[text](path)`` with no URL scheme)
  resolves to an existing file or directory, so the README/ARCHITECTURE/
  paper-map cross-reference web cannot rot silently.  Anchors-only links
  (``#section``) and external URLs are skipped; a ``path#anchor`` link is
  checked for the file part.
* ``--quickstart``: extract the first fenced ``python`` code block from
  ``README.md`` and execute it, so the quickstart the README promises is
  the quickstart that runs.

With no flags, both checks run.  Exits non-zero on any failure, printing
one line per problem.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — good enough for this repository's plain markdown
#: (no nested brackets in link texts, no angle-bracket targets).
LINK_PATTERN = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")
SCHEME_PATTERN = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")
PYTHON_BLOCK_PATTERN = re.compile(r"```python\n(.*?)```", re.DOTALL)


def iter_markdown_files() -> list[Path]:
    """Every markdown file in the repository (skipping caches/VCS)."""
    skip_parts = {".git", "__pycache__", ".pytest_cache", "node_modules"}
    return [
        path
        for path in sorted(REPO_ROOT.rglob("*.md"))
        if not (skip_parts & set(path.parts))
    ]


def check_links() -> list[str]:
    """Return one message per broken intra-repo link."""
    problems: list[str] = []
    for path in iter_markdown_files():
        text = path.read_text(encoding="utf-8")
        # Fenced code blocks may contain bracketed pseudo-links; drop them.
        prose = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        for match in LINK_PATTERN.finditer(prose):
            target = match.group(1)
            if SCHEME_PATTERN.match(target) or target.startswith("#"):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}: broken link -> {target}"
                )
    return problems


def run_quickstart() -> list[str]:
    """Execute the README's first python block; return failure messages."""
    readme = REPO_ROOT / "README.md"
    match = PYTHON_BLOCK_PATTERN.search(readme.read_text(encoding="utf-8"))
    if match is None:
        return ["README.md: no fenced ```python quickstart block found"]
    code = match.group(1)
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        exec(compile(code, "README.md <python quickstart>", "exec"), {})
    except Exception as exc:  # surface, don't crash the gate itself
        return [f"README.md quickstart failed: {type(exc).__name__}: {exc}"]
    return []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--links", action="store_true", help="only check links")
    parser.add_argument(
        "--quickstart", action="store_true", help="only run the README quickstart"
    )
    args = parser.parse_args(argv)
    run_all = not (args.links or args.quickstart)

    problems: list[str] = []
    if args.links or run_all:
        link_problems = check_links()
        problems.extend(link_problems)
        print(
            f"link check: {len(iter_markdown_files())} markdown files, "
            f"{len(link_problems)} broken links"
        )
    if args.quickstart or run_all:
        quickstart_problems = run_quickstart()
        problems.extend(quickstart_problems)
        if not quickstart_problems:
            print("README quickstart: ran clean")

    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())

"""Navigation service scenario: concurrent route suggestions on a live road network.

The paper's first motivating application (Section 1) is a navigation service
that must return the top-k candidate routes for many concurrent users while
traffic conditions evolve.  This example simulates such a service on the
simulated cluster:

* a scaled "NY" road network is generated and indexed with DTLP,
* the index and subgraphs are deployed on a simulated 6-worker cluster with
  the Storm-style topology of the paper (EntranceSpout / SubgraphBolts /
  QueryBolts),
* batches of route requests arrive interleaved with traffic updates,
* for each batch the example reports the simulated parallel completion time,
  total computation, communication volume and the load balance across
  workers.

Run with::

    python examples/navigation_service.py
"""

from __future__ import annotations

from repro import DTLP, DTLPConfig, StormTopology, TrafficModel, dataset
from repro.workloads import QueryGenerator


def main() -> None:
    # A scaled analogue of the paper's New York dataset.
    graph = dataset("NY", seed=3, scale=0.8)
    print(f"NY-scaled road network: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges")

    dtlp = DTLP(graph, DTLPConfig(z=48, xi=3)).build()
    print(f"DTLP built in {dtlp.build_seconds:.2f}s "
          f"({dtlp.partition.num_subgraphs} subgraphs)")

    topology = StormTopology(dtlp, num_workers=6)
    print(f"deployed on a simulated cluster of {topology.cluster.num_workers} workers")

    traffic = TrafficModel(graph, alpha=0.35, tau=0.30, seed=11)
    requests = QueryGenerator(graph, seed=5, min_hops=5)

    # Three rounds of: traffic update burst, then a batch of route requests.
    for epoch in range(1, 4):
        updates = traffic.generate_updates()
        graph.apply_updates(updates)
        dtlp.handle_updates(updates)
        topology.submit_weight_updates([])  # routing already done via dtlp above

        batch = requests.generate(8, k=3)
        report = topology.run_queries(batch)
        balance = report.load_balance
        print(
            f"\nepoch {epoch}: {len(updates)} weight updates, "
            f"{len(batch)} route requests"
        )
        print(f"  simulated parallel time : {report.makespan_seconds * 1000:.1f} ms")
        print(f"  total computation       : {report.total_compute_seconds * 1000:.1f} ms")
        print(f"  communication volume    : {report.communication_units} vertex-units")
        print(f"  mean iterations / query : {report.mean_iterations:.1f}")
        print(f"  busy-time spread        : {balance['busy_spread'] * 100:.1f}%")
        best = report.results[0]
        print(
            f"  sample answer           : request {best.query.source} -> "
            f"{best.query.target}, best 3 routes "
            f"{[round(p.distance, 1) for p in best.paths]}"
        )


if __name__ == "__main__":
    main()

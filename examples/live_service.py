"""Live serving scenario: the online layer over an evolving road network.

The paper's system is meant to run continuously — traffic evolves while
users keep asking for routes.  This example wires the full serving stack of
:mod:`repro.service` together:

* a scaled "NY" road network is generated and indexed with DTLP,
* a :class:`~repro.service.server.KSPService` serves KSP queries through a
  coalescing admission queue and an update-scoped result cache,
* epochs interleave a traffic snapshot (maintenance: graph + DTLP + cache
  invalidation through one listener fan-out) with a wave of route requests
  in which popular origin/destination pairs repeat,
* every served path is re-priced against the current weights to show that
  scoped invalidation never serves a stale distance,
* the final :class:`~repro.service.telemetry.ServiceReport` prints latency
  percentiles, cache hit rate, queue pressure and shed counts.

Run with::

    python examples/live_service.py
"""

from __future__ import annotations

from repro import DTLP, DTLPConfig, TrafficModel, dataset
from repro.bench.reporting import format_table
from repro.distributed import KSPDGEngine
from repro.service import KSPService, generate_trace, replay


def main() -> None:
    graph = dataset("NY", seed=3, scale=0.6)
    print(f"NY-scaled road network: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges")

    dtlp = DTLP(graph, DTLPConfig(z=48, xi=3)).build()
    print(f"DTLP built in {dtlp.build_seconds:.2f}s "
          f"({dtlp.partition.num_subgraphs} subgraphs)")

    engine = KSPDGEngine.local(dtlp, num_workers=4)
    traffic = TrafficModel(graph, alpha=0.05, tau=0.30, seed=11)
    service = KSPService(graph, engine, dtlp=dtlp, traffic=traffic,
                         queue_capacity=128, max_batch_size=16)

    # A reproducible mixed trace: 300 route requests (60% repeating popular
    # origin/destination pairs) interleaved with 30 traffic snapshots.
    trace = generate_trace(graph, num_queries=300, update_rounds=30,
                           k=2, seed=11, repeat_fraction=0.6, traffic=traffic)
    print(f"replaying {len(trace)} events "
          f"(300 queries + 30 update rounds)...")
    outcome = replay(service, trace, validate=True)

    print(f"served {outcome.num_served} queries, shed {outcome.num_shed}, "
          f"stale results: {outcome.stale_served} (must be 0)")
    rows = [[key, value] for key, value in outcome.report.as_dict().items()]
    print(format_table(["metric", "value"], rows))
    service.close()


if __name__ == "__main__":
    main()

"""Ride-sharing scenario: alternative routes for driver-passenger matches.

The paper's second motivating application (Section 1) is ride-sharing: when a
driver is matched with a passenger, the service presents a few alternative
shortest routes so the driver can trade off detours against potential extra
pick-ups.  This example:

* generates a scaled "COL" road network and indexes it with DTLP,
* simulates a stream of ride requests (pick-up and drop-off locations),
* for each request retrieves the k=3 alternative routes with KSP-DG,
* scores the alternatives by a simple detour/overlap heuristic to illustrate
  how a downstream matching component would consume the KSP results,
* periodically applies traffic updates, showing that route quality tracks
  the changing conditions without rebuilding the index.

Run with::

    python examples/ride_sharing.py
"""

from __future__ import annotations

from repro import DTLP, DTLPConfig, KSPDG, TrafficModel, dataset
from repro.graph.paths import Path
from repro.workloads import QueryGenerator


def overlap_fraction(first: Path, second: Path) -> float:
    """Fraction of the first path's edges shared with the second path."""
    first_edges = {tuple(sorted(edge)) for edge in first.edges()}
    second_edges = {tuple(sorted(edge)) for edge in second.edges()}
    if not first_edges:
        return 0.0
    return len(first_edges & second_edges) / len(first_edges)


def main() -> None:
    graph = dataset("COL", seed=9, scale=0.8)
    print(f"COL-scaled road network: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges")

    dtlp = DTLP(graph, DTLPConfig(z=48, xi=3)).build()
    graph.add_listener(dtlp.handle_updates)
    engine = KSPDG(dtlp)
    traffic = TrafficModel(graph, alpha=0.30, tau=0.40, seed=21)
    rides = QueryGenerator(graph, seed=33, min_hops=6)

    print("\nprocessing 9 ride requests (traffic refreshes every 3 rides)\n")
    for ride_number, request in enumerate(rides.stream(9, k=3), start=1):
        if ride_number % 3 == 1 and ride_number > 1:
            updates = traffic.advance()
            print(f"-- traffic update: {len(updates)} road segments changed --")

        result = engine.query(request.source, request.target, request.k)
        if not result.paths:
            print(f"ride {ride_number}: no route found")
            continue
        primary = result.paths[0]
        print(f"ride {ride_number}: {request.source} -> {request.target}")
        print(f"  primary route : distance {primary.distance:g}, "
              f"{primary.num_edges} segments")
        for rank, alternative in enumerate(result.paths[1:], start=2):
            detour = (alternative.distance - primary.distance) / primary.distance
            shared = overlap_fraction(alternative, primary)
            print(
                f"  option #{rank}     : distance {alternative.distance:g} "
                f"(+{detour * 100:.0f}%), overlaps primary {shared * 100:.0f}%"
            )


if __name__ == "__main__":
    main()

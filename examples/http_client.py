"""Front-door scenario: talking to the serving tier over HTTP, surviving faults.

A deployed KSP-DG sits behind a network front door: replicated engines,
deadline budgets, circuit breakers and a stale cache for graceful
degradation.  This example wires the whole path together in one process:

* a small road network is indexed and served by two replicas behind the
  asyncio HTTP front door (:mod:`repro.frontdoor`),
* a :class:`~repro.frontdoor.FrontDoorClient` with a seeded
  :class:`~repro.frontdoor.RetryPolicy` issues queries with per-request
  deadline budgets, retrying 429/503 with capped jittered backoff,
* a maintenance round is pushed through ``POST /maintenance`` and the
  graph version bump shows up in the next answer,
* one replica is killed mid-run: rendezvous failover hides it; then the
  *whole* fleet is killed and a previously-answered key comes back from
  the stale cache flagged ``degraded: true`` while an unseen key gets an
  honest 503,
* the ``/healthz`` document shows breaker states and shed counters.

Run with::

    python examples/http_client.py
"""

from __future__ import annotations

from repro.frontdoor import FrontDoorClient, RetryPolicy, build_replicas, start_front_door
from repro.graph import road_network


def show(result) -> str:
    if result.status != 200:
        return f"HTTP {result.status} after {result.attempts} attempt(s)"
    distances = [round(path["distance"], 1) for path in result.paths]
    tag = " (degraded, stale cache)" if result.degraded else ""
    return (
        f"{len(result.paths)} paths, distances {distances}, "
        f"graph v{result.payload.get('stale_graph_version', result.payload['graph_version'])}, "
        f"replica {result.payload.get('replica', '-')}{tag}"
    )


def main() -> None:
    graph = road_network(6, 6, seed=3)
    print(f"road network: {graph.num_vertices} vertices, {graph.num_edges} edges")

    replicas = build_replicas(graph, num_replicas=2, engine="yen")
    with start_front_door(replicas) as handle:
        print(f"front door listening on {handle.url}\n")
        policy = RetryPolicy(max_attempts=4, base_backoff=0.05, seed=7)
        with FrontDoorClient.for_url(handle.url, retry_policy=policy) as client:
            # 1. Plain queries with a 500 ms deadline budget each.
            for source, target in [(0, 35), (5, 30)]:
                result = client.query(source, target, k=3, budget_ms=500.0)
                print(f"query ({source} -> {target}): {show(result)}")

            # 2. A maintenance round: double the first few edge weights.
            edges = list(graph.edges())[:4]
            response = client.maintenance([(u, v, w * 2.0) for u, v, w in edges])
            print(f"\nmaintenance round applied: {response}")
            result = client.query(0, 35, k=3, budget_ms=500.0)
            print(f"query (0 -> 35) after maintenance: {show(result)}")

            # 3. Kill one replica: the retry policy plus rendezvous
            #    failover hide the hole entirely.
            handle.run_on_loop(handle.server.replicas[0].kill)
            result = client.query(5, 30, k=3, budget_ms=500.0)
            print(f"\nreplica 0 killed; query (5 -> 30): {show(result)}")

            # 4. Kill the whole fleet: a warm key degrades gracefully,
            #    an unseen key gets an honest 503.
            handle.run_on_loop(handle.server.replicas[1].kill)
            warm = client.query(0, 35, k=3, budget_ms=400.0)
            cold = client.query(13, 22, k=3, budget_ms=400.0)
            print(f"all replicas dead; warm key (0 -> 35): {show(warm)}")
            print(f"all replicas dead; cold key (13 -> 22): {show(cold)}")

            # 5. The health surface tells the same story.
            health = client.health()
            print("\n/healthz:")
            for entry in health["replicas"]:
                print(
                    f"  replica {entry['id']}: alive={entry['alive']} "
                    f"breaker={entry['breaker']}"
                )
            counters = health["counters"]
            print(
                f"  served ok={counters['served_ok']} "
                f"degraded={counters['served_degraded']} "
                f"failovers={counters['failovers']} "
                f"unavailable={counters['no_replica_available']}"
            )


if __name__ == "__main__":
    main()

"""Sensor-network scenario: energy-aware multi-path routing on evolving link costs.

Section 1 of the paper notes that the techniques generalise beyond road
networks to any graph with evolving edge weights, giving energy-aware sensor
routing as an example: a source node wants several low-energy paths to the
sink and rotates among them probabilistically so no relay node is drained.

This example models that use case:

* a random connected "sensor field" graph is generated, edge weights model
  per-hop transmission energy,
* DTLP + KSP-DG provide the k lowest-energy paths between a sensor and the
  sink,
* after every routing round the energy cost of the links on the chosen paths
  increases (battery depletion), the index is maintained incrementally, and
  the route set adapts.

Run with::

    python examples/dynamic_sensor_network.py
"""

from __future__ import annotations

import random

from repro import DTLP, DTLPConfig, KSPDG, WeightUpdate, random_graph


def main() -> None:
    rng = random.Random(5)
    field = random_graph(num_vertices=120, num_edges=260, seed=5, min_weight=2, max_weight=9)
    print(f"sensor field: {field.num_vertices} nodes, {field.num_edges} links")

    dtlp = DTLP(field, DTLPConfig(z=30, xi=2)).build()
    field.add_listener(dtlp.handle_updates)
    engine = KSPDG(dtlp)

    source, sink = 3, 117
    k = 3
    usage_counts = {}

    for round_number in range(1, 6):
        result = engine.query(source, sink, k)
        if not result.paths:
            print(f"round {round_number}: sink unreachable")
            break
        chosen = result.paths[round_number % len(result.paths)]
        print(
            f"round {round_number}: {len(result.paths)} candidate paths, "
            f"energies {[round(p.distance, 1) for p in result.paths]}; "
            f"routing over path with energy {chosen.distance:g}"
        )

        # Battery depletion: every link on the chosen path gets 20-40% more
        # expensive for the next round.
        updates = []
        for u, v in chosen.edges():
            usage_counts[(u, v)] = usage_counts.get((u, v), 0) + 1
            new_cost = field.weight(u, v) * rng.uniform(1.2, 1.4)
            updates.append(WeightUpdate(u, v, round(new_cost, 3)))
        field.apply_updates(updates)

    heavily_used = sum(1 for count in usage_counts.values() if count >= 3)
    print(f"\nlinks used by 3+ rounds: {heavily_used} "
          f"(lower is better for battery balance)")


if __name__ == "__main__":
    main()

"""Quickstart: build a dynamic road network, index it with DTLP, answer KSP queries.

This is the shortest end-to-end tour of the library:

1. generate a synthetic road network with integer travel times,
2. build the DTLP two-level index (graph partition, bounding paths, skeleton
   graph),
3. answer a few k-shortest-path queries with KSP-DG,
4. change traffic conditions and show that the index keeps answering exactly,
5. cross-check every answer against Yen's algorithm on the full graph.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    DTLP,
    DTLPConfig,
    KSPDG,
    TrafficModel,
    road_network,
    yen_k_shortest_paths,
)


def main() -> None:
    # 1. A 12x12 synthetic road network (~144 intersections).
    graph = road_network(12, 12, seed=42)
    print(f"road network: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # 2. Build the DTLP index: subgraphs of at most 30 vertices, 3 bounding
    #    paths per boundary-vertex pair.
    dtlp = DTLP(graph, DTLPConfig(z=30, xi=3)).build()
    stats = dtlp.statistics()
    print(
        f"DTLP built in {stats.build_seconds:.3f}s: "
        f"{stats.num_subgraphs} subgraphs, "
        f"{stats.num_boundary_vertices} boundary vertices, "
        f"skeleton graph with {stats.skeleton_vertices} vertices / "
        f"{stats.skeleton_edges} edges"
    )

    # Keep the index synchronized with every future weight change.
    graph.add_listener(dtlp.handle_updates)

    # 3. Answer a few queries.
    engine = KSPDG(dtlp)
    queries = [(0, 143, 3), (11, 132, 2), (5, 77, 4)]
    for source, target, k in queries:
        result = engine.query(source, target, k)
        print(f"\nquery {source} -> {target}, k={k} "
              f"({result.iterations} iterations)")
        for rank, path in enumerate(result.paths, start=1):
            print(f"  #{rank}: distance {path.distance:g}, {len(path)} vertices")

    # 4. Traffic evolves: 35% of the roads change travel time by up to 30%.
    model = TrafficModel(graph, alpha=0.35, tau=0.30, seed=7)
    updates = model.advance()
    print(f"\napplied {len(updates)} travel-time updates "
          f"(index maintenance {dtlp.last_maintenance_seconds * 1000:.1f} ms)")

    # 5. Same queries again, and verify against Yen's algorithm.
    for source, target, k in queries:
        result = engine.query(source, target, k)
        reference = yen_k_shortest_paths(graph, source, target, k)
        matches = [round(d, 6) for d in result.distances] == [
            round(p.distance, 6) for p in reference
        ]
        print(f"query {source} -> {target}: new best {result.distances[0]:g} "
              f"(matches Yen: {matches})")


if __name__ == "__main__":
    main()

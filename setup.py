"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that ``pip install -e .`` also works on environments whose setuptools/pip
combination lacks wheel support for PEP 660 editable installs (legacy
``setup.py develop`` path).
"""

from setuptools import setup

setup()
